//! Error-*collecting* static analysis of CaRL programs.
//!
//! Where [`crate::validate`] stops at the first violation (the historical
//! fail-fast behaviour the engine relies on), this module walks the whole
//! program and reports **every** defect it can find as a [`Diagnostic`]
//! carrying a stable code, a severity, a byte [`Span`] into the source, a
//! message and optional related spans — the shape a language server or a
//! `carl-check`-style linter needs.
//!
//! Schema-independent checks implemented here:
//!
//! | code    | severity | check |
//! |---------|----------|-------|
//! | `E0001` | error    | variable safety in causal rules (Definition 3.3) |
//! | `E0002` | error    | aggregate-rule shape: head/source variables bound by the `WHERE` clause |
//! | `E0003` | error    | attribute defined by both an aggregate and a causal rule |
//! | `E0004` | error    | query uses the same attribute as treatment and response |
//! | `E0005` | error    | recursive model — reported with the full dependency cycle |
//! | `E0006` | error    | statically unsatisfiable condition (conflicting equalities, empty comparison intervals, non-numeric ordering — see [`crate::deps`]) |
//! | `W0001` | warning  | a condition variable bound exactly once and never used |
//! | `W0002` | warning  | dead statement: its condition is proven unsatisfiable, so it can never fire |
//! | `W0003` | warning  | attribute never grounded (every defining statement dead) / aggregate unreachable (its source is never grounded) |
//!
//! Schema-aware checks (`E01xx`: unknown predicates/attributes, arity and
//! comparison-type mismatches, shadowed attributes) live in the `carl`
//! engine crate, which owns the schema; they produce the same
//! [`Diagnostic`] type.

use crate::ast::{AggregateRule, CausalRule, Condition, Program};
use crate::deps::{ConditionFact, ProgramDeps, StatementId};
use crate::span::{LineIndex, Span};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program is ill-formed and must be rejected.
    Error,
    /// Suspicious but legal; the program may still run.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// A single analysis finding, anchored to a source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code, e.g. `E0001`.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Primary source location (may be [`Span::DUMMY`] for synthetic ASTs).
    pub span: Span,
    /// Human-readable description of the defect.
    pub message: String,
    /// Additional locations that participate in the defect (e.g. the other
    /// rules on a dependency cycle), each with a short label.
    pub related: Vec<(Span, String)>,
}

impl Diagnostic {
    /// Construct an error diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            related: Vec::new(),
        }
    }

    /// Construct a warning diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Warning,
            span,
            message: message.into(),
            related: Vec::new(),
        }
    }

    /// Attach a related span.
    pub fn with_related(mut self, span: Span, label: impl Into<String>) -> Self {
        self.related.push((span, label.into()));
        self
    }

    /// Whether this diagnostic is an error.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

/// The result of analysing a program: every diagnostic found, plus the
/// topological order of attribute names when the model is acyclic.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// All findings, in deterministic source-then-check order.
    pub diagnostics: Vec<Diagnostic>,
    /// Attribute names in dependency order (causes before effects);
    /// `None` when the model is recursive.
    pub topo_order: Option<Vec<String>>,
}

impl Analysis {
    /// Whether any error-severity diagnostic was reported.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }

    /// Iterate over error-severity diagnostics only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error())
    }
}

/// Analyse a program, collecting every schema-independent defect.
pub fn analyze_program(program: &Program) -> Analysis {
    let mut diagnostics = Vec::new();
    // One whole-program dependency analysis feeds the per-condition
    // satisfiability diagnostics (E0006) and the dead/unreachable lints
    // (W0002/W0003).
    let deps = ProgramDeps::analyze(program);

    for (i, rule) in program.rules.iter().enumerate() {
        check_rule_safety(rule, &mut diagnostics);
        push_unsat_diagnostic(&deps.rule_facts[i], &mut diagnostics);
        check_unused_variables(
            rule_variable_counts(rule),
            &rule.condition,
            &mut diagnostics,
        );
    }
    for (i, agg) in program.aggregates.iter().enumerate() {
        check_aggregate_shape(agg, &mut diagnostics);
        push_unsat_diagnostic(&deps.aggregate_facts[i], &mut diagnostics);
        check_unused_variables(
            aggregate_variable_counts(agg),
            &agg.condition,
            &mut diagnostics,
        );
    }

    // Aggregate-defined names must not also have causal rules.
    let aggregate_spans: BTreeMap<&str, Span> = program
        .aggregates
        .iter()
        .map(|a| (a.name.as_str(), a.span))
        .collect();
    for rule in &program.rules {
        if let Some(agg_span) = aggregate_spans.get(rule.head.attr.as_str()) {
            diagnostics.push(
                Diagnostic::error(
                    "E0003",
                    rule.head.span,
                    format!(
                        "attribute `{}` is defined both by an aggregate rule and a causal rule",
                        rule.head.attr
                    ),
                )
                .with_related(*agg_span, "the aggregate rule is here".to_string()),
            );
        }
    }

    // Queries: treatment != response, plus filter satisfiability.
    for (i, q) in program.queries.iter().enumerate() {
        if q.treatment.attr == q.response.attr {
            diagnostics.push(
                Diagnostic::error(
                    "E0004",
                    q.span,
                    format!(
                        "query `{} <= {}?` uses the same attribute as treatment and response",
                        q.response, q.treatment
                    ),
                )
                .with_related(q.treatment.span, "treatment".to_string()),
            );
        }
        push_unsat_diagnostic(&deps.query_facts[i], &mut diagnostics);
    }

    let topo_order = check_recursion(program, &mut diagnostics);
    check_dead_and_unreachable(program, &deps, &mut diagnostics);

    Analysis {
        diagnostics,
        topo_order,
    }
}

/// Map an abstract-interpretation unsatisfiability proof onto an `E0006`
/// diagnostic anchored at the comparison that completed the conflict.
fn push_unsat_diagnostic(fact: &ConditionFact, out: &mut Vec<Diagnostic>) {
    if let Some(proof) = &fact.unsat {
        let mut diag = Diagnostic::error("E0006", proof.span, proof.message.clone());
        for (span, label) in &proof.related {
            diag = diag.with_related(*span, label.clone());
        }
        out.push(diag);
    }
}

/// `W0002` for every statement whose condition is proven empty (it can
/// never fire) and `W0003` for attributes that are never grounded plus
/// aggregates whose source is never grounded.
fn check_dead_and_unreachable(program: &Program, deps: &ProgramDeps, out: &mut Vec<Diagnostic>) {
    for (i, rule) in program.rules.iter().enumerate() {
        if deps.rule_dead(i) {
            let mut diag = Diagnostic::warning(
                "W0002",
                rule.head.span,
                format!(
                    "rule for `{}` is dead: its condition is statically unsatisfiable, so it \
                     can never fire",
                    rule.head.attr
                ),
            );
            if let Some(proof) = &deps.rule_facts[i].unsat {
                diag = diag.with_related(proof.span, "condition proven empty here".to_string());
            }
            out.push(diag);
        }
    }
    for (i, agg) in program.aggregates.iter().enumerate() {
        if deps.aggregate_dead(i) {
            let mut diag = Diagnostic::warning(
                "W0002",
                agg.span,
                format!(
                    "aggregate rule `{}` is dead: its condition is statically unsatisfiable, \
                     so it can never fire",
                    agg.name
                ),
            );
            if let Some(proof) = &deps.aggregate_facts[i].unsat {
                diag = diag.with_related(proof.span, "condition proven empty here".to_string());
            }
            out.push(diag);
        }
    }
    for attr in &deps.never_grounded {
        let writers = &deps.writers[attr];
        let span = writers
            .first()
            .map(|w| match w {
                StatementId::Rule(i) => program.rules[*i].head.span,
                StatementId::Aggregate(i) => program.aggregates[*i].span,
            })
            .unwrap_or(Span::DUMMY);
        let mut diag = Diagnostic::warning(
            "W0003",
            span,
            format!(
                "attribute `{attr}` may never be grounded: every statement deriving it is \
                 dead or reads a never-grounded source"
            ),
        );
        for w in writers.iter().skip(1) {
            let s = match w {
                StatementId::Rule(i) => program.rules[*i].head.span,
                StatementId::Aggregate(i) => program.aggregates[*i].span,
            };
            diag = diag.with_related(s, format!("also derived by {}", w.label(program)));
        }
        out.push(diag);
    }
    for &i in &deps.unreachable_aggregates {
        let agg = &program.aggregates[i];
        out.push(Diagnostic::warning(
            "W0003",
            agg.span,
            format!(
                "aggregate `{}` is unreachable: its source `{}` may never be grounded",
                agg.name, agg.source.attr
            ),
        ));
    }
}

/// Variable safety (Definition 3.3) for one causal rule, collecting a
/// diagnostic per offending variable.
fn check_rule_safety(rule: &CausalRule, out: &mut Vec<Diagnostic>) {
    let cond_vars = rule.condition.variables();
    if rule.condition.is_trivial() {
        // Allowed only when every body atom ranges over exactly the head
        // variables (per-unit dependency with an implicit condition).
        let head_vars: BTreeSet<&str> = rule.head.variables().collect();
        for b in &rule.body {
            for v in b.variables() {
                if !head_vars.contains(v) {
                    out.push(Diagnostic::error(
                        "E0001",
                        b.span,
                        format!(
                            "variable `{v}` in rule for `{}` is not bound: the rule has no \
                             WHERE clause and `{v}` does not appear in the head",
                            rule.head.attr
                        ),
                    ));
                }
            }
        }
        return;
    }
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for attr_ref in std::iter::once(&rule.head).chain(rule.body.iter()) {
        for v in attr_ref.variables() {
            if !cond_vars.contains(v) && seen.insert(v) {
                out.push(Diagnostic::error(
                    "E0001",
                    attr_ref.span,
                    format!(
                        "variable `{v}` in rule for `{}` does not occur in its WHERE clause",
                        rule.head.attr
                    ),
                ));
            }
        }
    }
}

/// Aggregate-rule shape: head and source variables must be connected by the
/// condition (or coincide when the condition is trivial).
fn check_aggregate_shape(agg: &AggregateRule, out: &mut Vec<Diagnostic>) {
    let cond_vars = agg.condition.variables();
    let head_vars: BTreeSet<String> = agg
        .head_args
        .iter()
        .filter_map(|a| a.as_var().map(str::to_string))
        .collect();
    let source_vars: BTreeSet<String> = agg.source.variables().map(str::to_string).collect();
    if agg.condition.is_trivial() {
        if head_vars != source_vars {
            out.push(Diagnostic::error(
                "E0002",
                agg.span,
                format!(
                    "aggregate rule `{}` needs a WHERE clause connecting {:?} to {:?}",
                    agg.name, head_vars, source_vars
                ),
            ));
        }
        return;
    }
    for v in head_vars.iter().chain(source_vars.iter()) {
        if !cond_vars.contains(v) {
            out.push(Diagnostic::error(
                "E0002",
                agg.span,
                format!(
                    "variable `{v}` in aggregate rule `{}` does not occur in its WHERE clause",
                    agg.name
                ),
            ));
        }
    }
}

/// Count every occurrence of every variable across a causal rule.
fn rule_variable_counts(rule: &CausalRule) -> BTreeMap<String, usize> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut add = |v: &str| *counts.entry(v.to_string()).or_insert(0) += 1;
    rule.head.variables().for_each(&mut add);
    for b in &rule.body {
        b.variables().for_each(&mut add);
    }
    condition_variable_occurrences(&rule.condition, &mut add);
    counts
}

/// Count every occurrence of every variable across an aggregate rule.
fn aggregate_variable_counts(agg: &AggregateRule) -> BTreeMap<String, usize> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut add = |v: &str| *counts.entry(v.to_string()).or_insert(0) += 1;
    agg.head_args
        .iter()
        .filter_map(|a| a.as_var())
        .for_each(&mut add);
    agg.source.variables().for_each(&mut add);
    condition_variable_occurrences(&agg.condition, &mut add);
    counts
}

fn condition_variable_occurrences(condition: &Condition, add: &mut impl FnMut(&str)) {
    for atom in &condition.atoms {
        atom.args
            .iter()
            .filter_map(|a| a.as_var())
            .for_each(&mut *add);
    }
    for cmp in &condition.comparisons {
        cmp.attr.variables().for_each(&mut *add);
    }
}

/// Warn about condition variables that are bound exactly once and never
/// used anywhere else in the statement — usually a typo for a variable the
/// author meant to join on.
fn check_unused_variables(
    counts: BTreeMap<String, usize>,
    condition: &Condition,
    out: &mut Vec<Diagnostic>,
) {
    for (var, count) in counts {
        if count != 1 {
            continue;
        }
        // Only warn when the single occurrence is inside a condition atom:
        // a variable used once in a head/body/comparison position is already
        // an E0001-style binding problem, not an unused binding.
        let binding_atom = condition
            .atoms
            .iter()
            .find(|a| a.args.iter().filter_map(|t| t.as_var()).any(|v| v == var));
        if let Some(atom) = binding_atom {
            out.push(Diagnostic::warning(
                "W0001",
                atom.span,
                format!("variable `{var}` is bound by `{atom}` but never used"),
            ));
        }
    }
}

/// Kahn's algorithm over the attribute dependency graph (edge: body → head).
/// On success returns the topological order; on a cycle, reports the full
/// cycle path with the spans of the rules along it.
fn check_recursion(program: &Program, out: &mut Vec<Diagnostic>) -> Option<Vec<String>> {
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new(); // from -> to
                                                                         // Span of a defining statement for each head attribute, for reporting.
    let mut def_spans: BTreeMap<String, Span> = BTreeMap::new();
    let add_edge = |from: &str, to: &str, edges: &mut BTreeMap<String, BTreeSet<String>>| {
        edges
            .entry(from.to_string())
            .or_default()
            .insert(to.to_string());
    };
    for rule in &program.rules {
        nodes.insert(rule.head.attr.clone());
        def_spans.entry(rule.head.attr.clone()).or_insert(rule.span);
        for b in &rule.body {
            nodes.insert(b.attr.clone());
            add_edge(&b.attr, &rule.head.attr, &mut edges);
        }
    }
    for agg in &program.aggregates {
        nodes.insert(agg.name.clone());
        nodes.insert(agg.source.attr.clone());
        def_spans.entry(agg.name.clone()).or_insert(agg.span);
        add_edge(&agg.source.attr, &agg.name, &mut edges);
    }

    let mut in_degree: BTreeMap<String, usize> = nodes.iter().map(|n| (n.clone(), 0)).collect();
    for targets in edges.values() {
        for t in targets {
            *in_degree.get_mut(t).expect("edge target is a node") += 1;
        }
    }
    let mut queue: Vec<String> = in_degree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(n, _)| n.clone())
        .collect();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(n) = queue.pop() {
        order.push(n.clone());
        if let Some(targets) = edges.get(&n) {
            for t in targets {
                let d = in_degree.get_mut(t).expect("edge target is a node");
                *d -= 1;
                if *d == 0 {
                    queue.push(t.clone());
                }
            }
        }
    }
    if order.len() == nodes.len() {
        return Some(order);
    }

    // Every remaining node with positive in-degree sits on or downstream of
    // a cycle; walk predecessors-within-the-remainder until a node repeats
    // to recover one concrete cycle path.
    let remaining: BTreeSet<&String> = in_degree
        .iter()
        .filter(|(_, &d)| d > 0)
        .map(|(n, _)| n)
        .collect();
    let cycle = find_cycle(&edges, &remaining);
    let path = cycle.join("` → `");
    let anchor = cycle.first().cloned().unwrap_or_default();
    let mut diag = Diagnostic::error(
        "E0005",
        def_spans.get(&anchor).copied().unwrap_or(Span::DUMMY),
        format!(
            "the relational causal model is recursive (cycle: `{path}`); \
             recursive rules are not supported"
        ),
    );
    for name in cycle.iter().skip(1) {
        if let Some(&span) = def_spans.get(name) {
            diag = diag.with_related(span, format!("`{name}` is defined here"));
        }
    }
    out.push(diag);
    None
}

/// Find one concrete cycle among `remaining` nodes (all of which have a
/// predecessor within `remaining`). Returns the cycle as
/// `[a, b, …, a]` — first and last elements equal.
fn find_cycle(
    edges: &BTreeMap<String, BTreeSet<String>>,
    remaining: &BTreeSet<&String>,
) -> Vec<String> {
    let start = match remaining.iter().next() {
        Some(n) => (*n).clone(),
        None => return Vec::new(),
    };
    // Walk forward along edges restricted to the remainder; within it every
    // node has an outgoing edge into the remainder, so a repeat is
    // guaranteed within |remaining| + 1 steps.
    let mut path: Vec<String> = vec![start.clone()];
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    seen.insert(start.clone(), 0);
    let mut current = start;
    loop {
        let next = edges
            .get(&current)
            .and_then(|ts| ts.iter().find(|t| remaining.contains(t)))
            .cloned();
        let next = match next {
            Some(n) => n,
            // Shouldn't happen (cycle nodes always have a successor on the
            // cycle), but never loop forever on a malformed graph.
            None => return path,
        };
        if let Some(&at) = seen.get(&next) {
            let mut cycle: Vec<String> = path[at..].to_vec();
            cycle.push(next);
            return cycle;
        }
        seen.insert(next.clone(), path.len());
        path.push(next.clone());
        current = next;
    }
}

/// Render one diagnostic in a compact rustc-like format with a source
/// excerpt and caret underline.
pub fn render_diagnostic(source: &str, diagnostic: &Diagnostic) -> String {
    let index = LineIndex::new(source);
    let mut out = format!(
        "{}[{}]: {}\n",
        diagnostic.severity, diagnostic.code, diagnostic.message
    );
    render_excerpt(&index, diagnostic.span, &mut out);
    for (span, label) in &diagnostic.related {
        let pos = index.position(span.start);
        out.push_str(&format!("  = note: {label} ({pos})\n"));
    }
    out
}

/// Render every diagnostic, separated by blank lines, followed by a
/// one-line summary count.
pub fn render_diagnostics(source: &str, diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&render_diagnostic(source, d));
        out.push('\n');
    }
    let errors = diagnostics.iter().filter(|d| d.is_error()).count();
    let warnings = diagnostics.len() - errors;
    out.push_str(&format!(
        "{errors} error{}, {warnings} warning{}\n",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    ));
    out
}

fn render_excerpt(index: &LineIndex<'_>, span: Span, out: &mut String) {
    if span == Span::DUMMY {
        return;
    }
    let start = index.position(span.start);
    let line_text = index.line_text(start.line);
    let gutter = start.line.to_string();
    let pad = " ".repeat(gutter.len());
    out.push_str(&format!(
        "{pad}--> line {}, column {}\n",
        start.line, start.column
    ));
    out.push_str(&format!("{pad} |\n"));
    out.push_str(&format!("{gutter} | {line_text}\n"));
    // Caret-underline the part of the span that sits on the first line.
    let end = index.position(span.end);
    let caret_len = if end.line == start.line {
        (end.column - start.column).max(1)
    } else {
        line_text
            .chars()
            .count()
            .saturating_sub(start.column - 1)
            .max(1)
    };
    out.push_str(&format!(
        "{pad} | {}{}\n",
        " ".repeat(start.column - 1),
        "^".repeat(caret_len)
    ));
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn span_json(index: &LineIndex<'_>, span: Span) -> String {
    let pos = index.position(span.start);
    format!(
        r#"{{ "start": {}, "end": {}, "line": {}, "column": {} }}"#,
        span.start, span.end, pos.line, pos.column
    )
}

/// Render diagnostics as a stable machine-readable JSON document:
/// `{ "errors": N, "warnings": M, "diagnostics": [ { "code", "severity",
/// "message", "span": { "start", "end", "line", "column" }, "related":
/// [ { "label", "span" } ] } ] }`. Spans carry both byte offsets and
/// 1-based line/column. Field order and shape are part of the
/// `carl-check --json` contract and covered by golden snapshots.
pub fn diagnostics_to_json(source: &str, diagnostics: &[Diagnostic]) -> String {
    let index = LineIndex::new(source);
    let errors = diagnostics.iter().filter(|d| d.is_error()).count();
    let warnings = diagnostics.len() - errors;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"errors\": {errors},\n"));
    out.push_str(&format!("  \"warnings\": {warnings},\n"));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"code\": \"{}\",\n", json_escape(d.code)));
        out.push_str(&format!("      \"severity\": \"{}\",\n", d.severity));
        out.push_str(&format!(
            "      \"message\": \"{}\",\n",
            json_escape(&d.message)
        ));
        out.push_str(&format!("      \"span\": {},\n", span_json(&index, d.span)));
        out.push_str("      \"related\": [");
        for (j, (span, label)) in d.related.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{ \"label\": \"{}\", \"span\": {} }}",
                json_escape(label),
                span_json(&index, *span)
            ));
        }
        if !d.related.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }");
    }
    if !diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

/// Long-form prose for a diagnostic code, for `carl-check --explain`.
/// Returns `None` for codes this crate does not own (the schema-aware
/// `E01xx` family is explained by the engine crate).
pub fn explain_code(code: &str) -> Option<&'static str> {
    Some(match code {
        "E0000" => {
            "E0000: the source could not be parsed as a CaRL program.\n\n\
             The file failed at the lexical or syntactic level before any\n\
             semantic analysis ran — for example an unterminated string, a\n\
             malformed number, or a statement that is neither a rule, an\n\
             aggregate rule, nor a query. The message carries the exact\n\
             position of the first offending token. Nothing after the parse\n\
             error is analysed."
        }
        "E0001" => {
            "E0001: a rule variable is unsafe (Definition 3.3 of the paper).\n\n\
             Every variable appearing in the head or body of a causal rule\n\
             must be bound by the rule's WHERE clause, so that grounding can\n\
             enumerate its values from the database. A rule with no WHERE\n\
             clause is allowed only when every body atom ranges over exactly\n\
             the head variables."
        }
        "E0002" => {
            "E0002: an aggregate rule is ill-shaped.\n\n\
             The head arguments and the source attribute's variables of an\n\
             aggregate rule (for example `AVG_Score[A] <= Score[S] WHERE\n\
             Author(A, S)`) must all be bound by its WHERE clause; when the\n\
             clause is omitted, head and source variables must coincide.\n\
             Otherwise the grouping of source values under head units is\n\
             undefined."
        }
        "E0003" => {
            "E0003: an attribute is defined by both an aggregate rule and a\n\
             causal rule.\n\n\
             Aggregate heads are computed by folding source values per unit;\n\
             causal-rule heads are grounded from rule bodies. One attribute\n\
             cannot be both — the engine would have two conflicting\n\
             definitions for the same grounded node."
        }
        "E0004" => {
            "E0004: a causal query uses the same attribute as treatment and\n\
             response.\n\n\
             The effect of an attribute on itself is not a well-defined\n\
             causal quantity; treatment and response must be distinct\n\
             attributes."
        }
        "E0005" => {
            "E0005: the relational causal model is recursive.\n\n\
             The attribute dependency graph (edges from every body/source\n\
             read to the statement's head) contains a cycle, which the\n\
             diagnostic spells out. Grounding evaluates attributes in\n\
             dependency order (causes before effects), so cyclic models are\n\
             rejected. The related spans point at each defining statement on\n\
             the cycle."
        }
        "E0006" => {
            "E0006: a WHERE condition is statically unsatisfiable.\n\n\
             Abstract interpretation of the condition's comparison chains —\n\
             an interval/constant domain per attribute reference, under the\n\
             database value model (integers and equal-valued floats compare\n\
             equal; ordered comparisons require numeric operands; missing\n\
             values never satisfy a comparison) — proves that no tuple of\n\
             values can pass every comparison at once. Covered conflicts\n\
             include: two equalities pinning distinct values, an equality\n\
             plus a disequality on the same value, empty comparison\n\
             intervals such as `X > 5, X < 2`, ordered comparisons against\n\
             non-numeric constants, and equality-pinned values outside the\n\
             proven interval. The condition passes no row on any database\n\
             instance, so the statement or query it guards can never match."
        }
        "W0001" => {
            "W0001: a condition variable is bound exactly once and never\n\
             used.\n\n\
             A variable bound by a single predicate atom and mentioned\n\
             nowhere else does not constrain the query: it is usually a typo\n\
             for a variable the author meant to join on. The binding atom is\n\
             highlighted."
        }
        "W0002" => {
            "W0002: a statement is dead.\n\n\
             The statement's WHERE condition is statically unsatisfiable\n\
             (see E0006), so the rule or aggregate can never fire on any\n\
             database instance. The engine skips dead statements during\n\
             grounding and ignores their comparison reads when deciding\n\
             whether a commit may take the incremental patch fast path —\n\
             both without changing results, since a dead statement\n\
             contributes nothing."
        }
        "W0003" => {
            "W0003: an attribute may never be grounded, or an aggregate is\n\
             unreachable.\n\n\
             A derived attribute whose every defining statement is dead (or\n\
             itself reads a never-grounded source) will never receive\n\
             grounded nodes from those statements. An aggregate whose source\n\
             attribute is never grounded folds over observed values only —\n\
             or over nothing at all. Either way the program text promises a\n\
             derivation that cannot happen; the dead upstream statements are\n\
             the root cause."
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn codes(analysis: &Analysis) -> Vec<&'static str> {
        analysis.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_has_no_diagnostics_and_a_topo_order() {
        let prog = parse_program(
            r#"
            Prestige[A]  <= Qualification[A]              WHERE Person(A)
            Quality[S]   <= Qualification[A], Prestige[A] WHERE Author(A, S)
            Score[S]     <= Prestige[A]                   WHERE Author(A, S)
            AVG_Score[A] <= Score[S]                      WHERE Author(A, S)
            "#,
        )
        .unwrap();
        let analysis = analyze_program(&prog);
        assert!(
            analysis.diagnostics.is_empty(),
            "{:?}",
            analysis.diagnostics
        );
        let order = analysis.topo_order.unwrap();
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        assert!(pos("Qualification") < pos("Prestige"));
        assert!(pos("Score") < pos("AVG_Score"));
    }

    #[test]
    fn multiple_defects_are_all_collected() {
        // Three distinct defects in one program: an unsafe variable, a
        // recursive pair, and a treatment==response query.
        let src = "\
Score[S] <= Prestige[A] WHERE Submission(S)
A[X] <= B[X] WHERE Person(X)
B[X] <= A[X] WHERE Person(X)
Score[S] <= Score[S]?
";
        let prog = parse_program(src).unwrap();
        let analysis = analyze_program(&prog);
        let cs = codes(&analysis);
        assert!(cs.contains(&"E0001"), "{cs:?}");
        assert!(cs.contains(&"E0004"), "{cs:?}");
        assert!(cs.contains(&"E0005"), "{cs:?}");
        assert!(analysis.topo_order.is_none());
        assert!(analysis.has_errors());
        assert!(analysis.errors().count() >= 3);
        // Every span lies inside the source.
        for d in &analysis.diagnostics {
            assert!(d.span.end <= src.len());
            assert!(d.span.start <= d.span.end);
        }
    }

    #[test]
    fn recursion_reports_the_full_cycle_path() {
        let prog = parse_program(
            "A[X] <= B[X] WHERE Person(X)\n\
             B[X] <= C[X] WHERE Person(X)\n\
             C[X] <= A[X] WHERE Person(X)\n",
        )
        .unwrap();
        let analysis = analyze_program(&prog);
        let diag = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == "E0005")
            .expect("cycle diagnostic");
        // The cycle message names every attribute on the 3-cycle and closes
        // the loop (first == last).
        for name in ["A", "B", "C"] {
            assert!(diag.message.contains(&format!("`{name}`")) || diag.message.contains(name));
        }
        assert!(diag.message.contains("recursive"));
        // Related spans point at the other defining rules on the cycle.
        assert_eq!(diag.related.len(), 3);
    }

    #[test]
    fn unsatisfiable_equalities_are_flagged_with_related_span() {
        let src = r#"Score[S] <= Prestige[A] WHERE Author(A, S), Blind[C] = true, Blind[C] = false, Venue(C, S)"#;
        let prog = parse_program(src).unwrap();
        let analysis = analyze_program(&prog);
        let diag = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == "E0006")
            .expect("unsat diagnostic");
        assert_eq!(&src[diag.span.start..diag.span.end], "Blind[C] = false");
        assert_eq!(diag.related.len(), 1);
        assert_eq!(
            &src[diag.related[0].0.start..diag.related[0].0.end],
            "Blind[C] = true"
        );
        // Same constant twice is fine; different ops are fine.
        let prog = parse_program(
            "Score[S] <= Prestige[A] WHERE Author(A, S), Blind[C] = true, Blind[C] = true",
        )
        .unwrap();
        assert!(analyze_program(&prog).diagnostics.is_empty());
        let prog =
            parse_program("Score[S] <= Prestige[A] WHERE Author(A, S), Len[S] >= 1, Len[S] != 3")
                .unwrap();
        assert!(analyze_program(&prog).diagnostics.is_empty());
    }

    #[test]
    fn singleton_condition_variables_warn() {
        let src = "Score[S] <= Prestige[A] WHERE Author(A, S), Submitted(S, C)";
        let prog = parse_program(src).unwrap();
        let analysis = analyze_program(&prog);
        let diag = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == "W0001")
            .expect("unused-variable warning");
        assert_eq!(diag.severity, Severity::Warning);
        assert!(diag.message.contains("`C`"), "{}", diag.message);
        assert_eq!(&src[diag.span.start..diag.span.end], "Submitted(S, C)");
        // Warnings are not errors.
        assert!(!analysis.has_errors());
        assert!(analysis.topo_order.is_some());
    }

    #[test]
    fn name_clash_links_both_definitions() {
        use crate::ast::{AttrRef, CausalRule, Condition};
        let mut prog = parse_program("AVG_Score[A] <= Score[S] WHERE Author(A, S)").unwrap();
        prog.rules.push(CausalRule {
            head: AttrRef::over_vars("AVG_Score", &["A"]),
            body: vec![AttrRef::over_vars("Score", &["A"])],
            condition: Condition {
                atoms: vec![crate::ast::QueryAtom {
                    predicate: "Person".into(),
                    args: vec![crate::ast::ArgTerm::Var("A".into())],
                    span: Span::DUMMY,
                }],
                comparisons: vec![],
            },
            span: Span::DUMMY,
        });
        let analysis = analyze_program(&prog);
        let diag = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == "E0003")
            .expect("clash diagnostic");
        assert!(diag.message.contains("AVG_Score"));
        assert_eq!(diag.related.len(), 1);
    }

    #[test]
    fn rendered_diagnostics_include_excerpt_carets_and_summary() {
        let src = "Prestige[A] <= Qualification[A] WHERE Person(A)\n\
                   Score[S] <= Prestige[A] WHERE Submission(S)\n";
        let prog = parse_program(src).unwrap();
        let analysis = analyze_program(&prog);
        let rendered = render_diagnostics(src, &analysis.diagnostics);
        assert!(rendered.contains("error[E0001]"), "{rendered}");
        assert!(rendered.contains("--> line 2, column 13"), "{rendered}");
        assert!(
            rendered.contains("Score[S] <= Prestige[A] WHERE Submission(S)"),
            "{rendered}"
        );
        assert!(rendered.contains("^^^^^^^^^^^"), "{rendered}");
        assert!(rendered.contains("1 error"), "{rendered}");
    }

    #[test]
    fn dummy_spans_render_without_excerpt() {
        let d = Diagnostic::error("E0001", Span::DUMMY, "synthetic");
        let rendered = render_diagnostic("", &d);
        assert!(rendered.contains("error[E0001]: synthetic"));
        assert!(!rendered.contains("-->"));
    }

    #[test]
    fn interval_conflicts_are_promoted_to_e0006() {
        let src = "Score[S] <= Prestige[A] WHERE Author(A, S), Len[S] > 5.0, Len[S] < 2.0";
        let prog = parse_program(src).unwrap();
        let analysis = analyze_program(&prog);
        let cs = codes(&analysis);
        assert!(cs.contains(&"E0006"), "{cs:?}");
        // The dead rule is also reported as W0002, anchored at the head.
        let dead = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == "W0002")
            .expect("dead-rule warning");
        assert_eq!(&src[dead.span.start..dead.span.end], "Score[S]");
        assert_eq!(dead.severity, Severity::Warning);
    }

    #[test]
    fn cross_type_equal_literals_are_not_flagged() {
        // 1 and 1.0 denote the same database value — not a conflict.
        let prog =
            parse_program("Score[S] <= Prestige[A] WHERE Author(A, S), Len[S] = 1, Len[S] = 1.0")
                .unwrap();
        assert!(analyze_program(&prog).diagnostics.is_empty());
    }

    #[test]
    fn never_grounded_and_unreachable_aggregates_warn_w0003() {
        let src = "\
Prestige[A] <= Qualification[A] WHERE Person(A)
Quality[S] <= Prestige[A] WHERE Author(A, S), Score[S] > 5.0, Score[S] < 2.0
AVG_Quality[A] <= Quality[S] WHERE Author(A, S)
";
        let prog = parse_program(src).unwrap();
        let analysis = analyze_program(&prog);
        let w3: Vec<&Diagnostic> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.code == "W0003")
            .collect();
        assert!(w3.iter().any(|d| d.message.contains("`Quality`")), "{w3:?}");
        assert!(
            w3.iter()
                .any(|d| d.message.contains("`AVG_Quality` is unreachable")),
            "{w3:?}"
        );
        // Only the intentionally dead rule errors; the program still has a
        // topo order (deadness is not recursion).
        assert!(analysis.topo_order.is_some());
    }

    #[test]
    fn json_output_is_stable_and_escaped() {
        let src = "Prestige[A] <= Qualification[A] WHERE Person(A)\n\
                   Score[S] <= Prestige[A] WHERE Submission(S)\n";
        let prog = parse_program(src).unwrap();
        let analysis = analyze_program(&prog);
        let json = diagnostics_to_json(src, &analysis.diagnostics);
        assert!(json.contains("\"errors\": 1"), "{json}");
        assert!(json.contains("\"code\": \"E0001\""), "{json}");
        assert!(json.contains("\"severity\": \"error\""), "{json}");
        assert!(json.contains("\"line\": 2"), "{json}");
        // Messages with quotes/backslashes stay valid JSON.
        let d = Diagnostic::error("E0001", Span::DUMMY, "a \"quoted\" \\ message\nline2");
        let json = diagnostics_to_json("", &[d]);
        assert!(json.contains(r#"a \"quoted\" \\ message\nline2"#), "{json}");
        // Empty diagnostics render an empty array.
        let json = diagnostics_to_json("", &[]);
        assert!(json.contains("\"diagnostics\": []"), "{json}");
    }

    #[test]
    fn every_owned_code_has_an_explanation() {
        for code in [
            "E0000", "E0001", "E0002", "E0003", "E0004", "E0005", "E0006", "W0001", "W0002",
            "W0003",
        ] {
            let prose = explain_code(code).unwrap_or_else(|| panic!("no explanation for {code}"));
            assert!(
                prose.starts_with(code),
                "{code} prose must lead with the code"
            );
        }
        assert!(explain_code("E0101").is_none());
        assert!(explain_code("bogus").is_none());
    }
}
