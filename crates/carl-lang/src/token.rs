//! Token definitions for the CaRL surface syntax.

use crate::error::Position;
use crate::span::Span;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier: attribute, predicate or variable name.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A double-quoted string literal (contents, unescaped).
    Str(String),
    /// The rule/query arrow `<=`, `<-` or `⇐`.
    Arrow,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `?`
    Question,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `!=`
    NotEq,
    /// `<`
    Less,
    /// `<=` used in comparison position is reported as [`TokenKind::Arrow`];
    /// the parser disambiguates by context. `>=`:
    GreaterEq,
    /// `>`
    Greater,
    /// `<=` in comparison context (emitted by the parser, never the lexer).
    LessEq,
    /// End of a statement (newline or `;`).
    Newline,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it starts in the source.
    pub position: Position,
    /// The byte range it occupies in the source.
    pub span: Span,
}

impl TokenKind {
    /// A short human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::Float(f) => format!("number `{f}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Arrow => "`<=`".to_string(),
            TokenKind::LBracket => "`[`".to_string(),
            TokenKind::RBracket => "`]`".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Question => "`?`".to_string(),
            TokenKind::Percent => "`%`".to_string(),
            TokenKind::Eq => "`=`".to_string(),
            TokenKind::NotEq => "`!=`".to_string(),
            TokenKind::Less => "`<`".to_string(),
            TokenKind::LessEq => "`<=`".to_string(),
            TokenKind::Greater => "`>`".to_string(),
            TokenKind::GreaterEq => "`>=`".to_string(),
            TokenKind::Newline => "end of statement".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }

    /// Whether this token is a keyword-like identifier equal (case
    /// insensitively) to `kw`.
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_is_compact() {
        assert_eq!(TokenKind::Arrow.describe(), "`<=`");
        assert_eq!(
            TokenKind::Ident("WHERE".into()).describe(),
            "identifier `WHERE`"
        );
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        assert!(TokenKind::Ident("where".into()).is_keyword("WHERE"));
        assert!(TokenKind::Ident("WHEN".into()).is_keyword("when"));
        assert!(!TokenKind::Comma.is_keyword("WHERE"));
    }
}
