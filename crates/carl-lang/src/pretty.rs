//! Pretty-printing of CaRL AST nodes back to surface syntax.
//!
//! The printer produces text that re-parses to an equal AST, which the
//! property tests rely on (parse ∘ print = id).

use crate::ast::{
    AggregateRule, CausalQuery, CausalRule, Condition, PeerCondition, Program, Statement,
};
use std::fmt::Write as _;

/// Render a causal rule.
pub fn print_rule(rule: &CausalRule) -> String {
    let body: Vec<String> = rule.body.iter().map(|b| b.to_string()).collect();
    let mut s = format!("{} <= {}", rule.head, body.join(", "));
    push_condition(&mut s, &rule.condition);
    s
}

/// Render an aggregate rule.
pub fn print_aggregate(rule: &AggregateRule) -> String {
    let mut s = format!("{} <= {}", rule.head(), rule.source);
    push_condition(&mut s, &rule.condition);
    s
}

/// Render a causal query.
pub fn print_query(query: &CausalQuery) -> String {
    let mut s = format!("{} <= {}?", query.response, query.treatment);
    push_condition(&mut s, &query.condition);
    if let Some(peers) = &query.peers {
        let _ = write!(s, " WHEN {} PEERS TREATED", print_peer(peers));
    }
    s
}

fn print_peer(p: &PeerCondition) -> String {
    match p {
        PeerCondition::All => "ALL".to_string(),
        PeerCondition::None => "NONE".to_string(),
        PeerCondition::LessThanPercent(k) => format!("LESS THAN {k}% "),
        PeerCondition::MoreThanPercent(k) => format!("MORE THAN {k}% "),
        PeerCondition::AtMost(k) => format!("AT MOST {k}"),
        PeerCondition::AtLeast(k) => format!("AT LEAST {k}"),
        PeerCondition::Exactly(k) => format!("EXACTLY {k}"),
    }
    .trim_end()
    .to_string()
}

fn push_condition(s: &mut String, cond: &Condition) {
    if !cond.is_trivial() {
        let _ = write!(s, " WHERE {cond}");
    }
}

/// Render a statement.
pub fn print_statement(stmt: &Statement) -> String {
    match stmt {
        Statement::Rule(r) => print_rule(r),
        Statement::Aggregate(a) => print_aggregate(a),
        Statement::Query(q) => print_query(q),
    }
}

/// Render a whole program, one statement per line (rules, then aggregates,
/// then queries, preserving relative order within each group).
pub fn print_program(program: &Program) -> String {
    let mut lines = Vec::new();
    lines.extend(program.rules.iter().map(print_rule));
    lines.extend(program.aggregates.iter().map(print_aggregate));
    lines.extend(program.queries.iter().map(print_query));
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query};

    #[test]
    fn rule_roundtrip() {
        let src = "Quality[S] <= Qualification[A], Prestige[A] WHERE Author(A, S)";
        let prog = parse_program(src).unwrap();
        let printed = print_rule(&prog.rules[0]);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(prog.rules[0], reparsed.rules[0]);
    }

    #[test]
    fn query_roundtrip_with_peers_and_where() {
        for src in [
            "Score[S] <= Prestige[A]?",
            "AVG_Score[A] <= Prestige[A]? WHEN ALL PEERS TREATED",
            "Score[S] <= Prestige[A]? WHERE Submitted(S, C), Blind[C] = false WHEN MORE THAN 33% PEERS TREATED",
            "Score[S] <= Prestige[A]? WHEN AT LEAST 2 PEERS TREATED",
            "Score[S] <= Prestige[A]? WHEN EXACTLY 1 PEERS TREATED",
        ] {
            let q = parse_query(src).unwrap();
            let printed = print_query(&q);
            let reparsed = parse_query(&printed).unwrap();
            assert_eq!(q, reparsed, "roundtrip failed for {src}\nprinted: {printed}");
        }
    }

    #[test]
    fn program_roundtrip() {
        let src = r#"
            Prestige[A] <= Qualification[A] WHERE Person(A)
            AVG_Score[A] <= Score[S] WHERE Author(A, S)
            AVG_Score[A] <= Prestige[A]?
        "#;
        let prog = parse_program(src).unwrap();
        let printed = print_program(&prog);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(prog, reparsed);
        assert_eq!(printed.lines().count(), 3);
    }
}
