//! `carl-lang` — lexer, parser, AST and static checks for **CaRL**, the
//! Causal Relational Language of Salimi et al. (SIGMOD 2020).
//!
//! CaRL programs consist of three kinds of statements (paper §3):
//!
//! 1. **Relational causal rules** (Definition 3.3), e.g.
//!    ```text
//!    Score[S] <= Quality[S], Prestige[A] WHERE Author(A, S)
//!    ```
//! 2. **Aggregate rules** (§3.2.4), whose head attribute is prefixed by an
//!    aggregate name, e.g.
//!    ```text
//!    AVG_Score[A] <= Score[S] WHERE Author(A, S)
//!    ```
//! 3. **Causal queries** (§3.3): average treatment effect, aggregated
//!    response, and relational/isolated/overall peer-effect queries, e.g.
//!    ```text
//!    Score[S] <= Prestige[A] ?
//!    AVG_Score[A] <= Prestige[A] ?
//!    Score[S] <= Prestige[A] ? WHEN MORE THAN 33% PEERS TREATED
//!    ```
//!
//! The textual arrow may be written `<=`, `<-` or the Unicode `⇐` used in
//! the paper. `WHERE` conditions are conjunctive queries over the schema
//! predicates, optionally extended with attribute comparisons
//! (e.g. `Blind[C] = false`) which the engine uses to restrict analyses to
//! sub-populations (the paper's single-blind vs double-blind split).
//!
//! This crate is deliberately independent of the database and engine crates:
//! it knows nothing about schemas or instances. Schema-aware validation
//! happens in the `carl` crate; here we check lexical/syntactic correctness
//! plus purely syntactic safety conditions (variable safety, non-recursion,
//! aggregate-head shape).
//!
//! ```
//! use carl_lang::parse_program;
//!
//! let program = parse_program(r#"
//!     Prestige[A]  <= Qualification[A]              WHERE Person(A)
//!     Quality[S]   <= Qualification[A], Prestige[A] WHERE Author(A, S)
//!     Score[S]     <= Quality[S]                    WHERE Submission(S)
//!     Score[S]     <= Prestige[A]                   WHERE Author(A, S)
//!     AVG_Score[A] <= Score[S]                      WHERE Author(A, S)
//!
//!     AVG_Score[A] <= Prestige[A] ?
//! "#).unwrap();
//! assert_eq!(program.rules.len(), 4);
//! assert_eq!(program.aggregates.len(), 1);
//! assert_eq!(program.queries.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod ast;
pub mod deps;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod validate;

pub use analyze::{
    analyze_program, diagnostics_to_json, explain_code, render_diagnostic, render_diagnostics,
    Analysis, Diagnostic, Severity,
};
pub use ast::{
    AggName, AggregateRule, ArgTerm, AttrRef, CausalQuery, CausalRule, CompareOp, Comparison,
    Condition, Literal, PeerCondition, Program, QueryAtom, Statement,
};
pub use deps::{
    AttrBounds, ConditionFact, DepEdge, DepKind, DomainHint, ProgramDeps, StatementId, UnsatKind,
    UnsatProof,
};
pub use error::{LangError, LangResult, Position};
pub use parser::{parse_program, parse_query, parse_rule};
pub use span::{LineIndex, Span};
pub use validate::validate_program;
