//! Property-based tests for the error-collecting analyzer over *malformed*
//! CaRL programs: randomly generated defect mixes (unbound variables,
//! recursive pairs/triangles/multi-hop cycles, disconnected aggregates,
//! unsatisfiable equality filters and interval conflicts, self-treatment
//! queries) must each surface as a diagnostic with the right code, the
//! analyzer and the whole-program dependency analysis must never panic, and
//! every reported span must lie inside the source text.

use carl_lang::analyze::analyze_program;
use carl_lang::parse_program;
use proptest::prelude::*;

/// The kinds of schema-independent defect the generator can inject. Each
/// defect uses an indexed, kind-private name space so defects cannot
/// accidentally cancel or merge with each other.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Defect {
    /// A body variable that never appears in the WHERE clause → E0001.
    UnboundVariable,
    /// A two-rule dependency cycle → E0005.
    RecursivePair,
    /// An aggregate whose head and source variables are unconnected → E0002.
    DisconnectedAggregate,
    /// Two equality filters forcing one attribute to two constants → E0006.
    UnsatisfiableFilters,
    /// Ordered comparisons whose intervals cannot overlap → E0006.
    IntervalConflict,
    /// A query using one attribute as both treatment and response → E0004.
    SelfTreatmentQuery,
    /// A three-rule dependency triangle → E0005.
    TriangleCycle,
    /// A four-rule dependency cycle → E0005.
    MultiHopCycle,
}

impl Defect {
    fn code(self) -> &'static str {
        match self {
            Defect::UnboundVariable => "E0001",
            Defect::RecursivePair => "E0005",
            Defect::DisconnectedAggregate => "E0002",
            Defect::UnsatisfiableFilters => "E0006",
            Defect::IntervalConflict => "E0006",
            Defect::SelfTreatmentQuery => "E0004",
            Defect::TriangleCycle => "E0005",
            Defect::MultiHopCycle => "E0005",
        }
    }

    /// Whether the defect introduces a rule-dependency cycle (and therefore
    /// suppresses the topological order).
    fn is_cycle(self) -> bool {
        matches!(
            self,
            Defect::RecursivePair | Defect::TriangleCycle | Defect::MultiHopCycle
        )
    }

    /// Render the defect as source text, using names namespaced by `i`.
    fn render(self, i: usize) -> String {
        match self {
            Defect::UnboundVariable => {
                format!("Ua{i}[S] <= Ub{i}[X] WHERE Up{i}(S)\n")
            }
            Defect::RecursivePair => {
                format!(
                    "Ra{i}[V] <= Rb{i}[V] WHERE Rp{i}(V)\n\
                     Rb{i}[V] <= Ra{i}[V] WHERE Rp{i}(V)\n"
                )
            }
            Defect::DisconnectedAggregate => {
                format!("AVG_Ag{i}[A] <= Ag{i}[B]\n")
            }
            Defect::UnsatisfiableFilters => {
                format!("Fa{i}[S] <= Fb{i}[A] WHERE Fq{i}(A, S), Fw{i}[A] = 1, Fw{i}[A] = 2\n")
            }
            Defect::IntervalConflict => {
                format!(
                    "Ia{i}[S] <= Ib{i}[A] WHERE Iq{i}(A, S), \
                     Iw{i}[A] > 5.0, Iw{i}[A] < 2.0\n"
                )
            }
            Defect::SelfTreatmentQuery => {
                format!("Qq{i}[X] <= Qq{i}[Y]?\n")
            }
            Defect::TriangleCycle => {
                format!(
                    "Ta{i}[V] <= Tb{i}[V] WHERE Tp{i}(V)\n\
                     Tb{i}[V] <= Tc{i}[V] WHERE Tp{i}(V)\n\
                     Tc{i}[V] <= Ta{i}[V] WHERE Tp{i}(V)\n"
                )
            }
            Defect::MultiHopCycle => {
                format!(
                    "Ma{i}[V] <= Mb{i}[V] WHERE Mp{i}(V)\n\
                     Mb{i}[V] <= Mc{i}[V] WHERE Mp{i}(V)\n\
                     Mc{i}[V] <= Md{i}[V] WHERE Mp{i}(V)\n\
                     Md{i}[V] <= Ma{i}[V] WHERE Mp{i}(V)\n"
                )
            }
        }
    }
}

fn arb_defect() -> impl Strategy<Value = Defect> {
    prop_oneof![
        Just(Defect::UnboundVariable),
        Just(Defect::RecursivePair),
        Just(Defect::DisconnectedAggregate),
        Just(Defect::UnsatisfiableFilters),
        Just(Defect::IntervalConflict),
        Just(Defect::SelfTreatmentQuery),
        Just(Defect::TriangleCycle),
        Just(Defect::MultiHopCycle),
    ]
}

/// A well-formed filler rule that never interferes with any defect name
/// space.
fn filler(i: usize) -> String {
    format!("Ok{i}[S] <= Okk{i}[A] WHERE Okp{i}(A, S)\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every injected defect is reported (with its code), no panic occurs,
    /// and every diagnostic span lies inside the source text.
    #[test]
    fn injected_defects_are_all_reported(
        defects in proptest::collection::vec(arb_defect(), 1..5),
        fillers in 0usize..3,
    ) {
        let mut src = String::new();
        for f in 0..fillers {
            src.push_str(&filler(f));
        }
        for (i, d) in defects.iter().enumerate() {
            src.push_str(&d.render(i));
        }
        let program = parse_program(&src)
            .unwrap_or_else(|e| panic!("generated program must parse: {e}\n{src}"));
        let analysis = analyze_program(&program);
        prop_assert!(analysis.has_errors(), "no errors for:\n{}", src);
        for d in &defects {
            prop_assert!(
                analysis.diagnostics.iter().any(|diag| diag.code == d.code()),
                "missing {} for defect {:?} in:\n{}\ngot: {:?}",
                d.code(), d, src, analysis.diagnostics,
            );
        }
        for diag in &analysis.diagnostics {
            prop_assert!(diag.span.start <= diag.span.end, "inverted span: {:?}", diag);
            prop_assert!(
                diag.span.end <= src.len(),
                "span {:?} outside source of length {}", diag.span, src.len(),
            );
            for (span, _) in &diag.related {
                prop_assert!(span.end <= src.len(), "related span out of bounds");
            }
        }
        // The topological order exists exactly when no cycle defect was
        // injected: no other defect kind creates a dependency cycle.
        let has_cycle = defects.iter().any(|d| d.is_cycle());
        prop_assert_eq!(
            analysis.topo_order.is_none(),
            has_cycle,
            "topo order presence disagrees with cycle defects in:\n{}", src,
        );
        // The whole-program dependency analysis must never panic on malformed
        // input, and its dead/unreachable verdicts must cover every statement.
        let deps = carl_lang::ProgramDeps::analyze(&program);
        for i in 0..program.rules.len() {
            let _ = deps.rule_dead(i);
        }
        for i in 0..program.aggregates.len() {
            let _ = deps.aggregate_dead(i);
        }
        let _ = deps.render(&program);
    }

    /// The analyzer never panics on anything the parser accepts, and spans
    /// always stay inside the source.
    #[test]
    fn analyzer_never_panics_on_parseable_input(input in "[ -~\n]{0,160}") {
        if let Ok(program) = parse_program(&input) {
            let analysis = analyze_program(&program);
            for diag in &analysis.diagnostics {
                prop_assert!(diag.span.end <= input.len());
                prop_assert!(diag.span.start <= diag.span.end);
            }
            // The dependency analysis and its report must be total too.
            let deps = carl_lang::ProgramDeps::analyze(&program);
            let _ = deps.render(&program);
        }
    }
}
