//! Property-based tests for the error-collecting analyzer over *malformed*
//! CaRL programs: randomly generated defect mixes (unbound variables,
//! recursive rule pairs, disconnected aggregates, unsatisfiable filters,
//! self-treatment queries) must each surface as a diagnostic with the right
//! code, the analyzer must never panic, and every reported span must lie
//! inside the source text.

use carl_lang::analyze::analyze_program;
use carl_lang::parse_program;
use proptest::prelude::*;

/// The kinds of schema-independent defect the generator can inject. Each
/// defect uses an indexed, kind-private name space so defects cannot
/// accidentally cancel or merge with each other.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Defect {
    /// A body variable that never appears in the WHERE clause → E0001.
    UnboundVariable,
    /// A two-rule dependency cycle → E0005.
    RecursivePair,
    /// An aggregate whose head and source variables are unconnected → E0002.
    DisconnectedAggregate,
    /// Two equality filters forcing one attribute to two constants → E0006.
    UnsatisfiableFilters,
    /// A query using one attribute as both treatment and response → E0004.
    SelfTreatmentQuery,
}

impl Defect {
    fn code(self) -> &'static str {
        match self {
            Defect::UnboundVariable => "E0001",
            Defect::RecursivePair => "E0005",
            Defect::DisconnectedAggregate => "E0002",
            Defect::UnsatisfiableFilters => "E0006",
            Defect::SelfTreatmentQuery => "E0004",
        }
    }

    /// Render the defect as source text, using names namespaced by `i`.
    fn render(self, i: usize) -> String {
        match self {
            Defect::UnboundVariable => {
                format!("Ua{i}[S] <= Ub{i}[X] WHERE Up{i}(S)\n")
            }
            Defect::RecursivePair => {
                format!(
                    "Ra{i}[V] <= Rb{i}[V] WHERE Rp{i}(V)\n\
                     Rb{i}[V] <= Ra{i}[V] WHERE Rp{i}(V)\n"
                )
            }
            Defect::DisconnectedAggregate => {
                format!("AVG_Ag{i}[A] <= Ag{i}[B]\n")
            }
            Defect::UnsatisfiableFilters => {
                format!("Fa{i}[S] <= Fb{i}[A] WHERE Fq{i}(A, S), Fw{i}[A] = 1, Fw{i}[A] = 2\n")
            }
            Defect::SelfTreatmentQuery => {
                format!("Qq{i}[X] <= Qq{i}[Y]?\n")
            }
        }
    }
}

fn arb_defect() -> impl Strategy<Value = Defect> {
    prop_oneof![
        Just(Defect::UnboundVariable),
        Just(Defect::RecursivePair),
        Just(Defect::DisconnectedAggregate),
        Just(Defect::UnsatisfiableFilters),
        Just(Defect::SelfTreatmentQuery),
    ]
}

/// A well-formed filler rule that never interferes with any defect name
/// space.
fn filler(i: usize) -> String {
    format!("Ok{i}[S] <= Okk{i}[A] WHERE Okp{i}(A, S)\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every injected defect is reported (with its code), no panic occurs,
    /// and every diagnostic span lies inside the source text.
    #[test]
    fn injected_defects_are_all_reported(
        defects in proptest::collection::vec(arb_defect(), 1..5),
        fillers in 0usize..3,
    ) {
        let mut src = String::new();
        for f in 0..fillers {
            src.push_str(&filler(f));
        }
        for (i, d) in defects.iter().enumerate() {
            src.push_str(&d.render(i));
        }
        let program = parse_program(&src)
            .unwrap_or_else(|e| panic!("generated program must parse: {e}\n{src}"));
        let analysis = analyze_program(&program);
        prop_assert!(analysis.has_errors(), "no errors for:\n{}", src);
        for d in &defects {
            prop_assert!(
                analysis.diagnostics.iter().any(|diag| diag.code == d.code()),
                "missing {} for defect {:?} in:\n{}\ngot: {:?}",
                d.code(), d, src, analysis.diagnostics,
            );
        }
        for diag in &analysis.diagnostics {
            prop_assert!(diag.span.start <= diag.span.end, "inverted span: {:?}", diag);
            prop_assert!(
                diag.span.end <= src.len(),
                "span {:?} outside source of length {}", diag.span, src.len(),
            );
            for (span, _) in &diag.related {
                prop_assert!(span.end <= src.len(), "related span out of bounds");
            }
        }
        // Defect programs with a cycle must not produce a topo order.
        if defects.contains(&Defect::RecursivePair) {
            prop_assert!(analysis.topo_order.is_none());
        }
    }

    /// The analyzer never panics on anything the parser accepts, and spans
    /// always stay inside the source.
    #[test]
    fn analyzer_never_panics_on_parseable_input(input in "[ -~\n]{0,160}") {
        if let Ok(program) = parse_program(&input) {
            let analysis = analyze_program(&program);
            for diag in &analysis.diagnostics {
                prop_assert!(diag.span.end <= input.len());
                prop_assert!(diag.span.start <= diag.span.end);
            }
        }
    }
}
