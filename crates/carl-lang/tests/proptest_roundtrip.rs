//! Property-based tests for the CaRL front end: pretty-printing any
//! generated statement and re-parsing it yields the same AST, and the lexer
//! never panics on arbitrary input.

use carl_lang::{
    parse_program, pretty, AggName, AggregateRule, ArgTerm, AttrRef, CausalQuery, CausalRule,
    CompareOp, Comparison, Condition, Literal, PeerCondition, Program, QueryAtom, Span,
};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9_]{0,8}".prop_map(|s| s)
}

fn arb_var() -> impl Strategy<Value = String> {
    // Exclude variables that could lex as the boolean keywords TRUE/FALSE.
    "[A-EG-SU-Z][A-Z0-9]{0,3}".prop_map(|s| s)
}

/// Strings over a charset that includes the characters the pretty-printer
/// must escape (quotes, backslashes, newlines, tabs).
fn arb_string() -> impl Strategy<Value = String> {
    const CHARSET: [char; 10] = ['a', 'Z', '0', '9', ' ', '_', '"', '\\', '\n', '\t'];
    proptest::collection::vec(0usize..CHARSET.len(), 0..10)
        .prop_map(|ixs| ixs.into_iter().map(|i| CHARSET[i]).collect())
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<bool>().prop_map(Literal::Bool),
        (-1000i64..1000).prop_map(Literal::Int),
        (0u32..10_000).prop_map(|n| Literal::Float(f64::from(n) + 0.25)),
        // Integral floats print with a decimal point and must come back as
        // floats, not collapse into integer literals.
        (-1000i64..1000).prop_map(|n| Literal::Float(n as f64)),
        arb_string().prop_map(Literal::Str),
    ]
}

fn arb_arg() -> impl Strategy<Value = ArgTerm> {
    prop_oneof![
        3 => arb_var().prop_map(ArgTerm::Var),
        1 => arb_literal().prop_map(ArgTerm::Const),
    ]
}

fn arb_attr_ref() -> impl Strategy<Value = AttrRef> {
    (arb_ident(), proptest::collection::vec(arb_arg(), 1..3)).prop_map(|(attr, args)| AttrRef {
        // Avoid accidentally generating aggregate-prefixed names, which the
        // parser classifies differently.
        attr: format!("At{attr}"),
        args,
        span: Span::DUMMY,
    })
}

fn arb_condition() -> impl Strategy<Value = Condition> {
    (
        proptest::collection::vec(
            (arb_ident(), proptest::collection::vec(arb_arg(), 1..3)).prop_map(
                |(predicate, args)| QueryAtom {
                    predicate,
                    args,
                    span: Span::DUMMY,
                },
            ),
            0..3,
        ),
        proptest::collection::vec(
            (arb_attr_ref(), arb_literal()).prop_map(|(attr, value)| Comparison {
                attr,
                op: CompareOp::Eq,
                value,
                span: Span::DUMMY,
            }),
            0..2,
        ),
    )
        .prop_map(|(atoms, comparisons)| Condition { atoms, comparisons })
}

fn arb_peer_condition() -> impl Strategy<Value = PeerCondition> {
    prop_oneof![
        Just(PeerCondition::All),
        Just(PeerCondition::None),
        (1u32..100).prop_map(|k| PeerCondition::MoreThanPercent(f64::from(k))),
        (1u32..100).prop_map(|k| PeerCondition::LessThanPercent(f64::from(k))),
        (0u64..10).prop_map(PeerCondition::AtLeast),
        (0u64..10).prop_map(PeerCondition::AtMost),
        (0u64..10).prop_map(PeerCondition::Exactly),
    ]
}

fn arb_rule() -> impl Strategy<Value = CausalRule> {
    (
        arb_attr_ref(),
        proptest::collection::vec(arb_attr_ref(), 1..4),
        arb_condition(),
    )
        .prop_map(|(head, body, condition)| CausalRule {
            head,
            body,
            condition,
            span: Span::DUMMY,
        })
}

fn arb_aggregate() -> impl Strategy<Value = AggregateRule> {
    (
        prop_oneof![
            Just(AggName::Avg),
            Just(AggName::Sum),
            Just(AggName::Count),
            Just(AggName::Min),
            Just(AggName::Max),
            Just(AggName::Var),
            Just(AggName::Median)
        ],
        arb_ident(),
        proptest::collection::vec(arb_arg(), 1..3),
        arb_attr_ref(),
        arb_condition(),
    )
        .prop_map(|(agg, base, head_args, source, condition)| AggregateRule {
            name: format!("{}_{base}", agg.name()),
            agg,
            head_args,
            source,
            condition,
            span: Span::DUMMY,
        })
}

fn arb_query() -> impl Strategy<Value = CausalQuery> {
    (
        arb_attr_ref(),
        arb_attr_ref(),
        proptest::option::of(arb_peer_condition()),
        arb_condition(),
    )
        .prop_map(|(response, treatment, peers, condition)| CausalQuery {
            response,
            treatment,
            peers,
            condition,
            span: Span::DUMMY,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print ∘ parse = id for causal rules.
    #[test]
    fn rule_roundtrip(rule in arb_rule()) {
        let printed = pretty::print_rule(&rule);
        let program = parse_program(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed for `{printed}`: {e}"));
        prop_assert_eq!(program.rules.len(), 1, "printed: {}", printed);
        prop_assert_eq!(&program.rules[0], &rule, "printed: {}", printed);
    }

    /// print ∘ parse = id for aggregate rules.
    #[test]
    fn aggregate_roundtrip(rule in arb_aggregate()) {
        let printed = pretty::print_aggregate(&rule);
        let program = parse_program(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed for `{printed}`: {e}"));
        prop_assert_eq!(program.aggregates.len(), 1, "printed: {}", printed);
        prop_assert_eq!(&program.aggregates[0], &rule, "printed: {}", printed);
    }

    /// print ∘ parse = id for causal queries.
    #[test]
    fn query_roundtrip(query in arb_query()) {
        let printed = pretty::print_query(&query);
        let program = parse_program(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed for `{printed}`: {e}"));
        prop_assert_eq!(program.queries.len(), 1, "printed: {}", printed);
        prop_assert_eq!(&program.queries[0], &query, "printed: {}", printed);
    }

    /// Whole programs round-trip.
    #[test]
    fn program_roundtrip(
        rules in proptest::collection::vec(arb_rule(), 0..4),
        aggregates in proptest::collection::vec(arb_aggregate(), 0..2),
        queries in proptest::collection::vec(arb_query(), 0..3),
    ) {
        let program = Program { rules, aggregates, queries };
        let printed = pretty::print_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed for `{printed}`: {e}"));
        prop_assert_eq!(reparsed, program, "printed: {}", printed);
    }

    /// The lexer and parser never panic on arbitrary input (errors are fine).
    #[test]
    fn parser_never_panics(input in "[ -~\n]{0,120}") {
        let _ = parse_program(&input);
    }
}
