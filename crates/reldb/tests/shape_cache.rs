//! Property suite for the shape-keyed plan-template cache.
//!
//! The planned executors cache query plans by *shape* — the query's
//! structure with every constant abstracted to a hole
//! ([`reldb::shape_key`]) — and re-target a cached template at new
//! constants with [`reldb::instantiate`]. The contract under test:
//!
//! * evaluating through a shared [`IndexCache`] (where repeated shapes hit
//!   the template cache) returns exactly the same answer multiset as a
//!   cold-planned fresh-cache evaluation and as the nested-loop reference;
//! * re-running an identical query is a cache *hit*; a query differing
//!   only in its constants is also a hit (that is the point of shape
//!   keying); a structurally different query is a miss;
//! * hits never change answers: every instantiated plan's answers are
//!   compared against the reference on every case.
//!
//! Case counts are modest for local runs; CI raises `PROPTEST_CASES`.

use proptest::prelude::*;
use reldb::{
    evaluate_naive, evaluate_tuples, evaluate_tuples_filtered, instantiate, plan_query, shape_key,
    Atom, Bindings, ConjunctiveQuery, DomainType, EqFilter, IndexCache, Instance, RelationalSchema,
    Skeleton, Term, Value,
};

fn canonical(bindings: Vec<Bindings>) -> Vec<Vec<(String, String)>> {
    let mut rows: Vec<Vec<(String, String)>> = bindings
        .into_iter()
        .map(|b| {
            let mut row: Vec<(String, String)> =
                b.into_iter().map(|(k, v)| (k, v.key_repr())).collect();
            row.sort();
            row
        })
        .collect();
    rows.sort();
    rows
}

fn schema() -> RelationalSchema {
    let mut s = RelationalSchema::new();
    s.add_entity("Person").unwrap();
    s.add_entity("Paper").unwrap();
    s.add_relationship("Writes", &["Person", "Paper"]).unwrap();
    s.add_relationship("Reviews", &["Person", "Paper", "Person"])
        .unwrap();
    s
}

fn skeleton_from(
    people: usize,
    papers: usize,
    writes: &[(usize, usize)],
    reviews: &[(usize, usize, usize)],
) -> Skeleton {
    let mut sk = Skeleton::new();
    for i in 0..people {
        sk.add_entity("Person", Value::from(format!("p{i}")));
    }
    for i in 0..papers {
        sk.add_entity("Paper", Value::from(format!("d{i}")));
    }
    for &(a, d) in writes {
        sk.add_relationship(
            "Writes",
            vec![Value::from(format!("p{a}")), Value::from(format!("d{d}"))],
        );
    }
    for &(a, d, b) in reviews {
        sk.add_relationship(
            "Reviews",
            vec![
                Value::from(format!("p{a}")),
                Value::from(format!("d{d}")),
                Value::from(format!("p{b}")),
            ],
        );
    }
    sk
}

/// Atom generator mirroring `eval_reference.rs`: small variable pool so
/// joins and self-joins are common; optional constant per atom whose key
/// (`k % 6` against 4 stored keys) sometimes misses.
fn atom_from(shape: u8, vars: &[u8], konst: Option<(u8, u8)>) -> Atom {
    const POOL: [&str; 4] = ["A", "B", "C", "D"];
    let term = |pos: usize| -> Term {
        if let Some((p, k)) = konst {
            if usize::from(p) == pos {
                return if shape.is_multiple_of(2) {
                    Term::constant(format!("p{}", k % 6))
                } else {
                    Term::constant(format!("d{}", k % 6))
                };
            }
        }
        Term::var(POOL[usize::from(vars[pos % vars.len()]) % POOL.len()])
    };
    match shape % 4 {
        0 => Atom::new("Person", vec![term(0)]),
        1 => Atom::new("Paper", vec![term(0)]),
        2 => Atom::new("Writes", vec![term(0), term(1)]),
        _ => Atom::new("Reviews", vec![term(0), term(1), term(2)]),
    }
}

type AtomShape = (u8, Vec<u8>, Option<(u8, u8)>);

fn query_from(shapes: &[AtomShape]) -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        shapes
            .iter()
            .map(|(shape, vars, konst)| atom_from(*shape, vars, *konst))
            .collect(),
    )
}

/// The same query with every constant re-targeted: key `k` becomes
/// `k + delta` (mod the generator's key space), leaving structure alone.
fn retarget(shapes: &[AtomShape], delta: u8) -> Vec<AtomShape> {
    shapes
        .iter()
        .map(|(shape, vars, konst)| {
            (
                *shape,
                vars.clone(),
                konst.map(|(p, k)| (p, (k + delta) % 6)),
            )
        })
        .collect()
}

fn arb_shapes(max_atoms: usize) -> impl Strategy<Value = Vec<AtomShape>> {
    proptest::collection::vec(
        (
            0u8..4,
            proptest::collection::vec(0u8..4, 3..4),
            proptest::option::of((0u8..3, 0u8..6)),
        ),
        1..max_atoms,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Re-running a query through a shared cache is a plan-template hit,
    /// and the cached-plan answers equal both a fresh cold-planned run and
    /// the nested-loop reference.
    #[test]
    fn repeated_shapes_hit_the_template_cache_without_changing_answers(
        writes in proptest::collection::vec((0usize..4, 0usize..4), 0..10),
        reviews in proptest::collection::vec((0usize..4, 0usize..4, 0usize..4), 0..6),
        shapes in arb_shapes(4),
    ) {
        let schema = schema();
        let skeleton = skeleton_from(4, 4, &writes, &reviews);
        let query = query_from(&shapes);
        let reference = canonical(evaluate_naive(&schema, &skeleton, &query).unwrap());

        let cache = IndexCache::for_skeleton(&skeleton);
        let first = evaluate_tuples(&cache, &schema, &skeleton, &query).unwrap();
        prop_assert_eq!(canonical(first.to_bindings()), reference.clone());
        let after_first = cache.plan_stats();
        prop_assert_eq!(after_first.misses, 1, "first run must cold-plan");
        prop_assert_eq!(after_first.hits, 0);
        prop_assert_eq!(after_first.entries, 1);

        let second = evaluate_tuples(&cache, &schema, &skeleton, &query).unwrap();
        prop_assert_eq!(canonical(second.to_bindings()), reference.clone());
        let after_second = cache.plan_stats();
        prop_assert_eq!(after_second.hits, 1, "identical query must hit");
        prop_assert_eq!(after_second.misses, 1);

        // A fresh cache (all cold plans) gives the same answers.
        let fresh = IndexCache::for_skeleton(&skeleton);
        let cold = evaluate_tuples(&fresh, &schema, &skeleton, &query).unwrap();
        prop_assert_eq!(canonical(cold.to_bindings()), reference);
    }

    /// A query differing from a cached one *only in constants* shares its
    /// shape key and is served by instantiating the cached template; the
    /// answers still match the reference for the new constants.
    #[test]
    fn constant_retargeting_hits_and_stays_correct(
        writes in proptest::collection::vec((0usize..4, 0usize..4), 0..10),
        reviews in proptest::collection::vec((0usize..4, 0usize..4, 0usize..4), 0..6),
        shapes in arb_shapes(4),
        delta in 1u8..6,
    ) {
        let schema = schema();
        let skeleton = skeleton_from(4, 4, &writes, &reviews);
        let query = query_from(&shapes);
        let retargeted = query_from(&retarget(&shapes, delta));
        prop_assert_eq!(shape_key(&query, &[]), shape_key(&retargeted, &[]));

        let cache = IndexCache::for_skeleton(&skeleton);
        let first = evaluate_tuples(&cache, &schema, &skeleton, &query).unwrap();
        prop_assert_eq!(
            canonical(first.to_bindings()),
            canonical(evaluate_naive(&schema, &skeleton, &query).unwrap())
        );

        let second = evaluate_tuples(&cache, &schema, &skeleton, &retargeted).unwrap();
        let stats = cache.plan_stats();
        prop_assert_eq!(stats.hits, 1, "same shape, new constants: must hit");
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.entries, 1);
        prop_assert_eq!(
            canonical(second.to_bindings()),
            canonical(evaluate_naive(&schema, &skeleton, &retargeted).unwrap()),
            "instantiated plan answered for the wrong constants"
        );

        // Direct template instantiation agrees with what the executor did:
        // the instantiated plan carries the retargeted query's own atoms.
        if let Ok(template) = plan_query(&schema, &skeleton, &query) {
            let plan = instantiate(&template, &retargeted, &[]).expect("same shape instantiates");
            for (step, atom_idx) in plan.steps.iter().map(|s| (s, s.atom_index)) {
                prop_assert_eq!(&step.atom, &retargeted.atoms[atom_idx]);
            }
        }
    }

    /// Structurally different queries never share a template entry, and a
    /// batch of mixed shapes through one cache stays correct shape by
    /// shape.
    #[test]
    fn distinct_shapes_miss_and_batches_stay_correct(
        writes in proptest::collection::vec((0usize..4, 0usize..4), 0..10),
        reviews in proptest::collection::vec((0usize..4, 0usize..4, 0usize..4), 0..6),
        batch in proptest::collection::vec(arb_shapes(4), 2..5),
    ) {
        let schema = schema();
        let skeleton = skeleton_from(4, 4, &writes, &reviews);
        let cache = IndexCache::for_skeleton(&skeleton);
        let mut seen_shapes = std::collections::HashSet::new();
        let mut expected_hits = 0usize;
        let mut expected_misses = 0usize;
        for shapes in &batch {
            let query = query_from(shapes);
            if seen_shapes.insert(shape_key(&query, &[])) {
                expected_misses += 1;
            } else {
                expected_hits += 1;
            }
            let got = evaluate_tuples(&cache, &schema, &skeleton, &query).unwrap();
            prop_assert_eq!(
                canonical(got.to_bindings()),
                canonical(evaluate_naive(&schema, &skeleton, &query).unwrap()),
                "query {}",
                query
            );
        }
        let stats = cache.plan_stats();
        prop_assert_eq!(stats.hits, expected_hits);
        prop_assert_eq!(stats.misses, expected_misses);
        prop_assert_eq!(stats.entries, seen_shapes.len());
    }

    /// The filtered entry point caches by (query shape, filter shape) and
    /// instantiated filtered plans keep agreeing with post-hoc filtering
    /// of the reference — including when only the filter *value* changes.
    #[test]
    fn filtered_shapes_cache_and_stay_correct(
        writes in proptest::collection::vec((0usize..4, 0usize..4), 0..10),
        flags in proptest::collection::vec(proptest::option::of(any::<bool>()), 4..5),
        shapes in arb_shapes(4),
        filter_var in 0usize..4,
        filter_value in any::<bool>(),
    ) {
        const POOL: [&str; 4] = ["A", "B", "C", "D"];
        let mut schema = schema();
        schema.add_attribute("Flag", "Person", DomainType::Bool, true).unwrap();
        let mut instance = Instance::new(schema);
        for i in 0..4 {
            instance.add_entity("Person", Value::from(format!("p{i}"))).unwrap();
            instance.add_entity("Paper", Value::from(format!("d{i}"))).unwrap();
        }
        for (i, flag) in flags.iter().enumerate() {
            if let Some(flag) = flag {
                instance
                    .set_attribute("Flag", &[Value::from(format!("p{i}"))], Value::Bool(*flag))
                    .unwrap();
            }
        }
        for &(a, d) in &writes {
            instance
                .add_relationship(
                    "Writes",
                    vec![Value::from(format!("p{a}")), Value::from(format!("d{d}"))],
                )
                .unwrap();
        }
        let query = query_from(&shapes);
        let filter_for = |value: bool| vec![EqFilter {
            attr: "Flag".to_string(),
            args: vec![Term::var(POOL[filter_var])],
            value: Value::Bool(value),
        }];

        // Post-hoc reference: evaluate unfiltered, keep rows whose binding
        // satisfies the filter (skip if the variable is unbound — such
        // filters error in the planner, which is fine to skip here).
        let reference = |value: bool| -> Option<Vec<Vec<(String, String)>>> {
            let rows = evaluate_naive(instance.schema(), instance.skeleton(), &query).ok()?;
            if !rows.iter().all(|b| b.contains_key(POOL[filter_var])) {
                return None;
            }
            let kept: Vec<Bindings> = rows
                .into_iter()
                .filter(|b| {
                    let key = [b[POOL[filter_var]].clone()];
                    instance.attribute("Flag", &key) == Some(&Value::Bool(value))
                })
                .collect();
            Some(canonical(kept))
        };

        let cache = IndexCache::for_skeleton(instance.skeleton());
        for (round, value) in [filter_value, !filter_value, filter_value].into_iter().enumerate() {
            let filters = filter_for(value);
            let got = evaluate_tuples_filtered(
                &cache, instance.schema(), &instance, &query, &filters,
            );
            let (Ok(got), Some(want)) = (got, reference(value)) else {
                // Planner rejection (e.g. the filter variable is unbound
                // in the query) — rejection is stable across rounds and
                // plan errors are never cached.
                continue;
            };
            prop_assert_eq!(
                canonical(got.to_bindings()),
                want,
                "round {} value {}",
                round,
                value
            );
        }
        // Rounds 2 and 3 flip only the filter value: same shape, so at
        // most one template entry exists for this query+filter structure.
        prop_assert!(cache.plan_stats().entries <= 1);
    }
}
