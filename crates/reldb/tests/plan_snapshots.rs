//! Golden snapshots of the query planner's `Display` output for the
//! paper's running-example rules (Figure 2 / Example 3.6).
//!
//! The planner is deterministic by construction (greedy cost order with
//! source-order tie-breaks, sorted semi-join lists), so the chosen join
//! order, access paths, semi-join passes and filter placement for a given
//! skeleton are stable. Any planner change that alters a plan shows up
//! here as a readable diff of the explain output, making regressions —
//! e.g. a lost probe or a dropped pruning pass — visible in review.

use reldb::{
    plan_query, plan_query_filtered, Atom, ConjunctiveQuery, EqFilter, IndexCache, Instance, Plan,
    RelationalSchema, Skeleton, Term, Value,
};

fn setup() -> (RelationalSchema, Skeleton, Instance) {
    let inst = Instance::review_example();
    (inst.schema().clone(), inst.skeleton().clone(), inst)
}

fn assert_plan(schema: &RelationalSchema, actual: Plan, expected: &str) {
    // Every golden plan must also pass the static plan verifier.
    reldb::plan::verify(schema, &actual).unwrap_or_else(|e| panic!("{e}\n{actual}"));
    assert_eq!(actual.to_string(), expected, "plan snapshot drifted");
}

/// The condition shared by rules (6)–(7): one authorship atom.
#[test]
fn single_authorship_atom_is_a_scan() {
    let (schema, sk, _) = setup();
    let q = ConjunctiveQuery::new(vec![Atom::new(
        "Author",
        vec![Term::var("A"), Term::var("S")],
    )]);
    assert_plan(
        &schema,
        plan_query(&schema, &sk, &q).unwrap(),
        "plan for Author(A, S)\n\
         \x20 slots: r0=A, r1=S\n\
         \x20 1. scan Author(A, S) [~5 rows]\n",
    );
}

/// The venue-restricted score rule of the comparison experiments:
/// `Score[S] <= Prestige[A] WHERE Author(A, S), Submitted(S, C),
/// Blind[C] = false`. The smaller `Submitted` relation is scanned first
/// (semi-join-pruned against authorships), authorships are hash-probed on
/// the shared submission variable, and the equality comparison is pinned
/// to step 1, where its conference variable binds.
#[test]
fn venue_restricted_condition_probes_and_pins_the_filter() {
    let (schema, _, inst) = setup();
    let cache = IndexCache::for_instance(&inst);
    let q = ConjunctiveQuery::new(vec![
        Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
        Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
    ]);
    let filters = vec![EqFilter {
        attr: "Blind".into(),
        args: vec![Term::var("C")],
        value: Value::Bool(false),
    }];
    assert_plan(
        &schema,
        plan_query_filtered(&schema, &inst, &cache, &q, &filters).unwrap(),
        "plan for Submitted(S, C), Author(A, S)\n\
         \x20 slots: r0=S, r1=C, r2=A\n\
         \x20 1. scan Submitted(S, C) [~3 rows]\n\
         \x20      semi-join: S in Author.1\n\
         \x20 2. probe Author(A, S) via (1) [~2 rows]\n\
         \x20 filter Blind[C] = false (after step 1)\n",
    );
}

/// A three-atom chain: the trailing entity atom becomes an O(1) membership
/// check once its variable is bound.
#[test]
fn chain_with_entity_check() {
    let (schema, sk, _) = setup();
    let q = ConjunctiveQuery::new(vec![
        Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
        Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
        Atom::new("Person", vec![Term::var("A")]),
    ]);
    assert_plan(
        &schema,
        plan_query(&schema, &sk, &q).unwrap(),
        "plan for Submitted(S, C), Author(A, S), Person(A)\n\
         \x20 slots: r0=S, r1=C, r2=A\n\
         \x20 1. scan Submitted(S, C) [~3 rows]\n\
         \x20      semi-join: S in Author.1\n\
         \x20 2. probe Author(A, S) via (1) [~2 rows]\n\
         \x20 3. check Person(A) [~1 rows]\n",
    );
}

/// Constants are bound before anything runs, so a single constant-bearing
/// atom is a pure index probe (Example 3.6's "who authored s3?").
#[test]
fn constant_terms_probe_immediately() {
    let (schema, sk, _) = setup();
    let q = ConjunctiveQuery::new(vec![Atom::new(
        "Author",
        vec![Term::var("A"), Term::constant("s3")],
    )]);
    assert_plan(
        &schema,
        plan_query(&schema, &sk, &q).unwrap(),
        "plan for Author(A, \"s3\")\n\
         \x20 slots: r0=A\n\
         \x20 1. probe Author(A, \"s3\") via (1) [~2 rows]\n",
    );
}

/// A selective equality filter on the scanned class replaces the scan with
/// an attribute-index fetch (only Carlos has Prestige = 0).
#[test]
fn selective_filter_becomes_an_attribute_fetch() {
    let (schema, _, inst) = setup();
    let cache = IndexCache::for_instance(&inst);
    let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
    let filters = vec![EqFilter {
        attr: "Prestige".into(),
        args: vec![Term::var("A")],
        value: Value::Int(0),
    }];
    assert_plan(
        &schema,
        plan_query_filtered(&schema, &inst, &cache, &q, &filters).unwrap(),
        "plan for Person(A)\n\
         \x20 slots: r0=A\n\
         \x20 1. fetch Person(A) from Prestige[A] = 0 [~1 rows]\n\
         \x20 filter Prestige[A] = 0 (after step 1)\n",
    );
}

/// The co-author self-join of the aggregate rule (12): the second
/// occurrence of `Author` is probed on the shared submission position; no
/// semi-join is emitted (pruning a column against itself is a no-op).
#[test]
fn coauthor_self_join_probes_the_shared_position() {
    let (schema, sk, _) = setup();
    let q = ConjunctiveQuery::new(vec![
        Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
        Atom::new("Author", vec![Term::var("B"), Term::var("S")]),
    ]);
    assert_plan(
        &schema,
        plan_query(&schema, &sk, &q).unwrap(),
        "plan for Author(A, S), Author(B, S)\n\
         \x20 slots: r0=A, r1=S, r2=B\n\
         \x20 1. scan Author(A, S) [~5 rows]\n\
         \x20 2. probe Author(B, S) via (1) [~2 rows]\n",
    );
}

/// The trivially true condition (rules without WHERE after implicit-atom
/// substitution never produce it, but the API admits it).
#[test]
fn empty_query_plans_to_nothing() {
    let (schema, sk, _) = setup();
    assert_plan(
        &schema,
        plan_query(&schema, &sk, &ConjunctiveQuery::truth()).unwrap(),
        "plan for true\n",
    );
}
