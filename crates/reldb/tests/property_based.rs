//! Property-based tests for the relational substrate.
//!
//! * `Value` ordering is a total order consistent with equality.
//! * CSV export/import round-trips arbitrary tables.
//! * Conjunctive-query evaluation agrees with a naive enumerate-and-check
//!   reference implementation on random small instances.

use proptest::prelude::*;
use reldb::{
    csv, evaluate, Atom, ConjunctiveQuery, DomainType, Instance, RelationalSchema, Table, Term,
    Value,
};
use std::collections::HashMap;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1000.0f64..1000.0).prop_map(Value::Float),
        "[a-zA-Z0-9 ,\"]{0,12}".prop_map(Value::Str),
    ]
}

proptest! {
    /// Ord is total, antisymmetric-with-Eq and transitive on sampled triples.
    #[test]
    fn value_ordering_laws(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Totality / consistency with equality.
        match a.cmp(&b) {
            Ordering::Equal => prop_assert_eq!(&a, &b),
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
        }
        // Transitivity.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Sorting never panics and is idempotent.
        let mut v = vec![a.clone(), b.clone(), c.clone()];
        v.sort();
        let mut w = v.clone();
        w.sort();
        prop_assert_eq!(v, w);
    }

    /// Equal values hash equally (required for grouping and indexing).
    #[test]
    fn equal_values_hash_equally(a in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let ints = [Value::Int(7), Value::Float(7.0)];
        let mut pairs = vec![(a.clone(), a)];
        pairs.push((ints[0].clone(), ints[1].clone()));
        for (x, y) in pairs {
            if x == y {
                let mut hx = DefaultHasher::new();
                let mut hy = DefaultHasher::new();
                x.hash(&mut hx);
                y.hash(&mut hy);
                prop_assert_eq!(hx.finish(), hy.finish());
            }
        }
    }

    /// CSV round-trips arbitrary tables of arbitrary values (types are
    /// sniffed back, so compare the rendered form).
    #[test]
    fn csv_roundtrip(rows in proptest::collection::vec(
        (arb_value(), arb_value(), -100i64..100), 0..20)) {
        let mut table = Table::with_columns(&["a", "b", "c"]);
        for (a, b, c) in &rows {
            table.push_row(vec![a.clone(), b.clone(), Value::Int(*c)]).unwrap();
        }
        let text = csv::to_csv_string(&table).unwrap();
        let back = csv::from_csv_string(&text).unwrap();
        prop_assert_eq!(back.row_count(), table.row_count());
        prop_assert_eq!(back.column_names(), table.column_names());
        for i in 0..table.row_count() {
            // Integers survive exactly.
            prop_assert_eq!(back.cell(i, "c").unwrap(), table.cell(i, "c").unwrap());
        }
    }
}

/// Reference CQ evaluation: enumerate all substitutions of query variables
/// over the active domain and check every atom.
fn naive_evaluate(
    schema: &RelationalSchema,
    instance: &Instance,
    query: &ConjunctiveQuery,
) -> usize {
    let vars: Vec<String> = query.variables().into_iter().collect();
    let mut domain: Vec<Value> = Vec::new();
    for e in schema.entities() {
        domain.extend(instance.skeleton().entity_keys(&e.name).iter().cloned());
    }
    let mut count = 0usize;
    let mut assignment: Vec<usize> = vec![0; vars.len()];
    'outer: loop {
        let binding: HashMap<&str, &Value> = vars
            .iter()
            .zip(&assignment)
            .map(|(v, &i)| (v.as_str(), &domain[i]))
            .collect();
        let holds = query.atoms.iter().all(|atom| {
            let tuple: Vec<Value> = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(v) => v.clone(),
                    Term::Var(v) => (*binding[v.as_str()]).clone(),
                })
                .collect();
            match schema.predicate_kind(&atom.predicate) {
                Some(reldb::PredicateKind::Entity) => {
                    instance.skeleton().has_entity(&atom.predicate, &tuple[0])
                }
                Some(reldb::PredicateKind::Relationship) => instance
                    .skeleton()
                    .relationship_tuples(&atom.predicate)
                    .contains(&tuple),
                None => false,
            }
        });
        if holds {
            count += 1;
        }
        // Advance the odometer.
        if vars.is_empty() || domain.is_empty() {
            break;
        }
        let mut pos = 0;
        loop {
            assignment[pos] += 1;
            if assignment[pos] < domain.len() {
                break;
            }
            assignment[pos] = 0;
            pos += 1;
            if pos == vars.len() {
                break 'outer;
            }
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Index-accelerated CQ evaluation agrees with naive enumeration on
    /// random small co-authorship instances.
    #[test]
    fn cq_evaluation_matches_naive_enumeration(
        authorship in proptest::collection::vec((0usize..5, 0usize..5), 0..12),
        constant in 0usize..5,
    ) {
        let mut schema = RelationalSchema::new();
        schema.add_entity("Person").unwrap();
        schema.add_entity("Paper").unwrap();
        schema.add_relationship("Writes", &["Person", "Paper"]).unwrap();
        schema.add_attribute("X", "Person", DomainType::Float, true).unwrap();
        let mut instance = Instance::new(schema.clone());
        for i in 0..5usize {
            instance.add_entity("Person", Value::from(format!("p{i}"))).unwrap();
            instance.add_entity("Paper", Value::from(format!("d{i}"))).unwrap();
        }
        for (a, p) in &authorship {
            instance
                .add_relationship("Writes", vec![Value::from(format!("p{a}")), Value::from(format!("d{p}"))])
                .unwrap();
        }

        let queries = vec![
            // Co-authors of a fixed paper.
            ConjunctiveQuery::new(vec![Atom::new(
                "Writes",
                vec![Term::var("A"), Term::constant(format!("d{constant}"))],
            )]),
            // Co-authorship pairs.
            ConjunctiveQuery::new(vec![
                Atom::new("Writes", vec![Term::var("A"), Term::var("P")]),
                Atom::new("Writes", vec![Term::var("B"), Term::var("P")]),
            ]),
            // Triangle-ish join with an entity atom.
            ConjunctiveQuery::new(vec![
                Atom::new("Person", vec![Term::var("A")]),
                Atom::new("Writes", vec![Term::var("A"), Term::var("P")]),
            ]),
        ];
        for query in queries {
            // The naive reference ranges variables over people ∪ papers; the
            // engine only returns well-typed bindings, so compare counts of
            // satisfying assignments, which coincide because ill-typed
            // assignments never satisfy the atoms.
            let fast = evaluate(&schema, instance.skeleton(), &query).unwrap().len();
            let slow = naive_evaluate(&schema, &instance, &query);
            prop_assert_eq!(fast, slow, "query {}", query);
        }
    }
}
