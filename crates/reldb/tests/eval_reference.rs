//! The query-fuzzing differential suite for `reldb`'s planned evaluator.
//!
//! [`reldb::evaluate_naive`] — nested loops, atoms in source order, full
//! scans, no indexes — defines the semantics of conjunctive-query
//! evaluation. The planned executor (greedy join order, positional and
//! composite hash probes, semi-join pruning, attribute-index fetches) is a
//! pile of pure optimisations, so on every skeleton and every query the two
//! must return the same multiset of bindings, and fail with the same errors.
//!
//! The fuzzer randomises skeletons *and* queries, covering the shapes named
//! in the planner's contract: multi-atom joins, self-joins, repeated
//! variables (within and across atoms), constant terms that sometimes miss
//! the key space, cross products (atoms sharing no variables), and
//! empty-result queries. A second property drives the filtered entry point
//! (`evaluate_filtered`) against naive evaluation plus post-hoc filtering,
//! and a third reuses one `IndexCache` across many queries to catch cache
//! corruption.
//!
//! Every case exercises *three* optimised executors against the reference:
//! the dense tuple executor through its `Vec<Bindings>` boundary
//! (`evaluate` / `evaluate_filtered`), the same executor through its raw
//! [`reldb::TupleAnswers`] interface (`evaluate_tuples*`, converted
//! explicitly), and the preserved PR 3 bindings executor
//! (`evaluate_bindings_*`), which must stay honest because the
//! `answer_pipeline` benchmark uses it as the baseline.
//!
//! Case counts are deliberately modest for local runs; CI's release-test
//! job raises them via the `PROPTEST_CASES` environment variable.

use proptest::prelude::*;
use reldb::{
    evaluate, evaluate_bindings_filtered, evaluate_bindings_in, evaluate_filtered, evaluate_in,
    evaluate_naive, evaluate_tuples, evaluate_tuples_filtered, plan_query, plan_query_filtered,
    Atom, Bindings, ConjunctiveQuery, DomainType, EqFilter, IndexCache, Instance, RelationalSchema,
    Skeleton, Term, Value,
};

/// Run the static plan verifier *unconditionally* (not just as a debug
/// assertion) on the plan the planner would emit for `query`: the fuzzer
/// must never see a structurally unsound plan, whatever the optimisation
/// level.
fn assert_verified(schema: &RelationalSchema, skeleton: &Skeleton, query: &ConjunctiveQuery) {
    if let Ok(plan) = plan_query(schema, skeleton, query) {
        reldb::plan::verify(schema, &plan).unwrap_or_else(|e| panic!("{e}\n{plan}"));
    }
}

/// Filtered-planning variant of [`assert_verified`].
fn assert_verified_filtered(
    instance: &Instance,
    cache: &IndexCache,
    query: &ConjunctiveQuery,
    filters: &[EqFilter],
) {
    if let Ok(plan) = plan_query_filtered(instance.schema(), instance, cache, query, filters) {
        reldb::plan::verify(instance.schema(), &plan).unwrap_or_else(|e| panic!("{e}\n{plan}"));
    }
}

/// Canonicalise a binding set for multiset comparison.
fn canonical(bindings: Vec<Bindings>) -> Vec<Vec<(String, String)>> {
    let mut rows: Vec<Vec<(String, String)>> = bindings
        .into_iter()
        .map(|b| {
            let mut row: Vec<(String, String)> =
                b.into_iter().map(|(k, v)| (k, v.key_repr())).collect();
            row.sort();
            row
        })
        .collect();
    rows.sort();
    rows
}

/// The randomised schema: two entity classes, a binary and a ternary
/// relationship — enough shape diversity for join-order bugs to surface.
fn schema() -> RelationalSchema {
    let mut s = RelationalSchema::new();
    s.add_entity("Person").unwrap();
    s.add_entity("Paper").unwrap();
    s.add_relationship("Writes", &["Person", "Paper"]).unwrap();
    s.add_relationship("Reviews", &["Person", "Paper", "Person"])
        .unwrap();
    s
}

fn skeleton_from(
    people: usize,
    papers: usize,
    writes: &[(usize, usize)],
    reviews: &[(usize, usize, usize)],
) -> Skeleton {
    let mut sk = Skeleton::new();
    for i in 0..people {
        sk.add_entity("Person", Value::from(format!("p{i}")));
    }
    for i in 0..papers {
        sk.add_entity("Paper", Value::from(format!("d{i}")));
    }
    for &(a, d) in writes {
        sk.add_relationship(
            "Writes",
            vec![Value::from(format!("p{a}")), Value::from(format!("d{d}"))],
        );
    }
    for &(a, d, b) in reviews {
        sk.add_relationship(
            "Reviews",
            vec![
                Value::from(format!("p{a}")),
                Value::from(format!("d{d}")),
                Value::from(format!("p{b}")),
            ],
        );
    }
    sk
}

/// Build one random atom. `shape` picks the predicate, `vars` the variable
/// names per position (variables are drawn from a tiny pool so repeats —
/// equality joins, self-joins and cross products — are all common), `konst`
/// optionally turns a position into a constant. Constants reference a key
/// space slightly larger than the skeleton's (`k % 6` against 4 stored
/// keys) so they sometimes hit and sometimes miss, producing empty results.
fn atom_from(shape: u8, vars: &[u8], konst: Option<(u8, u8)>) -> Atom {
    const POOL: [&str; 4] = ["A", "B", "C", "D"];
    let term = |pos: usize| -> Term {
        if let Some((p, k)) = konst {
            if usize::from(p) == pos {
                return if shape.is_multiple_of(2) {
                    Term::constant(format!("p{}", k % 6))
                } else {
                    Term::constant(format!("d{}", k % 6))
                };
            }
        }
        Term::var(POOL[usize::from(vars[pos % vars.len()]) % POOL.len()])
    };
    match shape % 4 {
        0 => Atom::new("Person", vec![term(0)]),
        1 => Atom::new("Paper", vec![term(0)]),
        2 => Atom::new("Writes", vec![term(0), term(1)]),
        _ => Atom::new("Reviews", vec![term(0), term(1), term(2)]),
    }
}

type AtomShape = (u8, Vec<u8>, Option<(u8, u8)>);

fn query_from(shapes: &[AtomShape]) -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        shapes
            .iter()
            .map(|(shape, vars, konst)| atom_from(*shape, vars, *konst))
            .collect(),
    )
}

fn arb_shapes(max_atoms: usize) -> impl Strategy<Value = Vec<AtomShape>> {
    proptest::collection::vec(
        (
            0u8..4,
            proptest::collection::vec(0u8..4, 3..4),
            proptest::option::of((0u8..3, 0u8..6)),
        ),
        1..max_atoms,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Indexed, reordered, semi-join-pruned evaluation returns exactly the
    /// reference binding multiset on random skeletons and random
    /// multi-atom queries.
    #[test]
    fn indexed_evaluation_matches_nested_loop_reference(
        writes in proptest::collection::vec((0usize..4, 0usize..4), 0..10),
        reviews in proptest::collection::vec((0usize..4, 0usize..4, 0usize..4), 0..8),
        shapes in arb_shapes(5),
    ) {
        let schema = schema();
        let skeleton = skeleton_from(4, 4, &writes, &reviews);
        let query = query_from(&shapes);
        assert_verified(&schema, &skeleton, &query);
        let fast = evaluate(&schema, &skeleton, &query).unwrap();
        let slow = canonical(evaluate_naive(&schema, &skeleton, &query).unwrap());
        prop_assert_eq!(
            canonical(fast),
            slow.clone(),
            "query {} over {} writes / {} reviews",
            query,
            writes.len(),
            reviews.len()
        );
        // The raw tuple interface (converted at the boundary) and the
        // preserved bindings executor agree too.
        let cache = IndexCache::for_skeleton(&skeleton);
        let tuples = evaluate_tuples(&cache, &schema, &skeleton, &query).unwrap();
        prop_assert_eq!(canonical(tuples.to_bindings()), slow.clone(), "tuples {}", query);
        let legacy = evaluate_bindings_in(&cache, &schema, &skeleton, &query).unwrap();
        prop_assert_eq!(canonical(legacy), slow, "bindings {}", query);
    }

    /// Single-atom queries with constants agree too (exercises the indexed
    /// probe path — including constants missing the key space entirely —
    /// against the full scan).
    #[test]
    fn constant_probes_match_full_scans(
        writes in proptest::collection::vec((0usize..4, 0usize..4), 0..12),
        person in 0usize..6,
        position in 0usize..2,
    ) {
        let schema = schema();
        let skeleton = skeleton_from(4, 4, &writes, &[]);
        let terms = if position == 0 {
            vec![Term::constant(format!("p{person}")), Term::var("X")]
        } else {
            vec![Term::var("X"), Term::constant(format!("d{person}"))]
        };
        let query = ConjunctiveQuery::new(vec![Atom::new("Writes", terms)]);
        assert_verified(&schema, &skeleton, &query);
        let fast = evaluate(&schema, &skeleton, &query).unwrap();
        let slow = canonical(evaluate_naive(&schema, &skeleton, &query).unwrap());
        prop_assert_eq!(canonical(fast), slow.clone());
        let cache = IndexCache::for_skeleton(&skeleton);
        let tuples = evaluate_tuples(&cache, &schema, &skeleton, &query).unwrap();
        prop_assert_eq!(canonical(tuples.to_bindings()), slow.clone());
        let legacy = evaluate_bindings_in(&cache, &schema, &skeleton, &query).unwrap();
        prop_assert_eq!(canonical(legacy), slow);
    }

    /// One `IndexCache` reused across a whole batch of queries over the
    /// same skeleton gives the same answers as fresh per-query evaluation
    /// (catches index-cache corruption and cross-query contamination).
    #[test]
    fn shared_cache_reuse_matches_fresh_evaluation(
        writes in proptest::collection::vec((0usize..4, 0usize..4), 0..10),
        reviews in proptest::collection::vec((0usize..4, 0usize..4, 0usize..4), 0..6),
        batch in proptest::collection::vec(arb_shapes(4), 1..4),
    ) {
        let schema = schema();
        let skeleton = skeleton_from(4, 4, &writes, &reviews);
        let cache = IndexCache::for_skeleton(&skeleton);
        for shapes in &batch {
            let query = query_from(shapes);
            assert_verified(&schema, &skeleton, &query);
            let shared = evaluate_in(&cache, &schema, &skeleton, &query).unwrap();
            let fresh = canonical(evaluate(&schema, &skeleton, &query).unwrap());
            prop_assert_eq!(canonical(shared), fresh.clone(), "query {}", query);
            // Tuple and bindings executors through the same shared cache.
            let tuples = evaluate_tuples(&cache, &schema, &skeleton, &query).unwrap();
            prop_assert_eq!(canonical(tuples.to_bindings()), fresh.clone(), "tuples {}", query);
            let legacy = evaluate_bindings_in(&cache, &schema, &skeleton, &query).unwrap();
            prop_assert_eq!(canonical(legacy), fresh, "bindings {}", query);
        }
    }

    /// `evaluate_filtered` (equality filters pushed into the plan, possibly
    /// replacing scans with attribute-index fetches) agrees with naive
    /// evaluation followed by post-hoc filtering.
    #[test]
    fn filtered_evaluation_matches_post_hoc_filtering(
        writes in proptest::collection::vec((0usize..4, 0usize..4), 0..10),
        flags in proptest::collection::vec(proptest::option::of(any::<bool>()), 4..5),
        shapes in arb_shapes(4),
        filter_var in 0usize..4,
        filter_value in any::<bool>(),
    ) {
        const POOL: [&str; 4] = ["A", "B", "C", "D"];
        let mut schema = schema();
        schema.add_attribute("Flag", "Person", DomainType::Bool, true).unwrap();
        let mut instance = Instance::new(schema);
        for i in 0..4 {
            instance.add_entity("Person", Value::from(format!("p{i}"))).unwrap();
            instance.add_entity("Paper", Value::from(format!("d{i}"))).unwrap();
        }
        // Some people have no Flag assignment at all (missing values must
        // never satisfy a filter).
        for (i, flag) in flags.iter().enumerate() {
            if let Some(flag) = flag {
                instance
                    .set_attribute("Flag", &[Value::from(format!("p{i}"))], Value::Bool(*flag))
                    .unwrap();
            }
        }
        for &(a, d) in &writes {
            instance
                .add_relationship(
                    "Writes",
                    vec![Value::from(format!("p{a}")), Value::from(format!("d{d}"))],
                )
                .unwrap();
        }
        let query = query_from(&shapes);
        let filters = vec![EqFilter {
            attr: "Flag".to_string(),
            args: vec![Term::var(POOL[filter_var])],
            value: Value::Bool(filter_value),
        }];

        let cache = IndexCache::for_instance(&instance);
        assert_verified_filtered(&instance, &cache, &query, &filters);
        let fast =
            evaluate_filtered(&cache, instance.schema(), &instance, &query, &filters).unwrap();
        let reference: Vec<Bindings> =
            evaluate_naive(instance.schema(), instance.skeleton(), &query)
                .unwrap()
                .into_iter()
                .filter(|b| match b.get(POOL[filter_var]) {
                    Some(v) => {
                        instance.attribute("Flag", std::slice::from_ref(v))
                            == Some(&Value::Bool(filter_value))
                    }
                    // Unbound filter variables never satisfy the filter.
                    None => false,
                })
                .collect();
        let reference = canonical(reference);
        prop_assert_eq!(canonical(fast), reference.clone(), "query {}", query);
        let tuples =
            evaluate_tuples_filtered(&cache, instance.schema(), &instance, &query, &filters)
                .unwrap();
        prop_assert_eq!(canonical(tuples.to_bindings()), reference.clone(), "tuples {}", query);
        let legacy =
            evaluate_bindings_filtered(&cache, instance.schema(), &instance, &query, &filters)
                .unwrap();
        prop_assert_eq!(canonical(legacy), reference, "bindings {}", query);
    }

    /// Cyclic join shapes — triangles and longer `Reviews` chains that
    /// close back on their first variable (`Reviews(X0,·,X1),
    /// Reviews(X1,·,X2), …, Reviews(Xn-1,·,X0)`) — match the reference.
    /// Cycles stress the planner differently from the chains `arb_shapes`
    /// mostly produces: every atom shares variables with two others, so
    /// greedy ordering always leaves a closing atom whose both endpoint
    /// variables are already bound.
    #[test]
    fn cyclic_join_chains_match_the_reference(
        writes in proptest::collection::vec((0usize..4, 0usize..4), 0..8),
        reviews in proptest::collection::vec((0usize..4, 0usize..4, 0usize..4), 0..12),
        hops in 2usize..5,
        share_paper in any::<bool>(),
    ) {
        const POOL: [&str; 4] = ["A", "B", "C", "D"];
        let schema = schema();
        let skeleton = skeleton_from(4, 4, &writes, &reviews);
        let atoms: Vec<Atom> = (0..hops)
            .map(|i| {
                let from = POOL[i];
                let to = POOL[(i + 1) % hops];
                // One shared paper variable makes the cycle "about" a single
                // paper (triangle reviews of one submission); distinct paper
                // variables leave the cycle only through the person column.
                let paper = if share_paper {
                    "P".to_string()
                } else {
                    format!("P{i}")
                };
                Atom::new(
                    "Reviews",
                    vec![Term::var(from), Term::var(&paper), Term::var(to)],
                )
            })
            .collect();
        let query = ConjunctiveQuery::new(atoms);
        assert_verified(&schema, &skeleton, &query);
        let slow = canonical(evaluate_naive(&schema, &skeleton, &query).unwrap());
        let fast = evaluate(&schema, &skeleton, &query).unwrap();
        prop_assert_eq!(canonical(fast), slow.clone(), "query {}", query);
        let cache = IndexCache::for_skeleton(&skeleton);
        let tuples = evaluate_tuples(&cache, &schema, &skeleton, &query).unwrap();
        prop_assert_eq!(canonical(tuples.to_bindings()), slow.clone(), "tuples {}", query);
        let legacy = evaluate_bindings_in(&cache, &schema, &skeleton, &query).unwrap();
        prop_assert_eq!(canonical(legacy), slow, "bindings {}", query);
    }

    /// Both evaluators reject exactly the same malformed queries.
    #[test]
    fn error_behaviour_matches(
        predicate in prop_oneof![
            Just("Person"), Just("Writes"), Just("Reviews"), Just("Nope")
        ],
        arity in 0usize..4,
    ) {
        let schema = schema();
        let skeleton = skeleton_from(2, 2, &[(0, 1)], &[]);
        let terms: Vec<Term> = (0..arity).map(|i| Term::var(&format!("V{i}"))).collect();
        let query = ConjunctiveQuery::new(vec![Atom::new(predicate, terms)]);
        assert_verified(&schema, &skeleton, &query);
        let fast = evaluate(&schema, &skeleton, &query);
        let slow = evaluate_naive(&schema, &skeleton, &query);
        prop_assert_eq!(fast.is_ok(), slow.is_ok(), "query {}", query);
        if let (Err(a), Err(b)) = (fast, slow) {
            prop_assert_eq!(a.to_string(), b.to_string());
        }
    }
}

/// A deterministic adversarial case: the selectivity heuristic strongly
/// wants to reorder (one empty entity atom, one fat relationship atom), and
/// a repeated variable forces an equality join across atoms.
#[test]
fn reordering_with_repeated_variables_is_sound() {
    let schema = schema();
    let writes: Vec<(usize, usize)> = (0..4).flat_map(|a| (0..4).map(move |d| (a, d))).collect();
    let reviews = vec![(0, 1, 2), (1, 1, 1), (2, 3, 0)];
    let skeleton = skeleton_from(4, 4, &writes, &reviews);
    // Reviews(A, P, A): reviewer equals the reviewed author.
    let query = ConjunctiveQuery::new(vec![
        Atom::new("Writes", vec![Term::var("A"), Term::var("P")]),
        Atom::new(
            "Reviews",
            vec![Term::var("A"), Term::var("P"), Term::var("A")],
        ),
    ]);
    let fast = evaluate(&schema, &skeleton, &query).unwrap();
    let slow = evaluate_naive(&schema, &skeleton, &query).unwrap();
    assert_eq!(canonical(fast), canonical(slow));
    // And the self-review case really matches only (1, 1, 1).
    assert_eq!(evaluate_naive(&schema, &skeleton, &query).unwrap().len(), 1);
}

/// Deterministic cross-product case: atoms sharing no variables multiply,
/// and the multiset (not set) semantics must be preserved by the planner.
#[test]
fn cross_products_preserve_multiplicity() {
    let schema = schema();
    let skeleton = skeleton_from(3, 2, &[(0, 0), (1, 1)], &[]);
    let query = ConjunctiveQuery::new(vec![
        Atom::new("Person", vec![Term::var("A")]),
        Atom::new("Writes", vec![Term::var("B"), Term::var("P")]),
    ]);
    let fast = evaluate(&schema, &skeleton, &query).unwrap();
    let slow = evaluate_naive(&schema, &skeleton, &query).unwrap();
    assert_eq!(fast.len(), 6);
    assert_eq!(canonical(fast), canonical(slow));
}
