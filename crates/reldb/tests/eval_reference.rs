//! Property tests for `reldb::eval`: the index-accelerated, selectivity-
//! reordered conjunctive-query evaluator against a naive nested-loop
//! reference evaluator that processes atoms **in the order given** and
//! never touches an index.
//!
//! The production evaluator sorts atoms most-selective-first and probes the
//! skeleton's positional hash indexes; both are pure optimisations, so on
//! every skeleton and every query the two evaluators must return the same
//! multiset of bindings. Randomising skeletons *and* queries is what
//! catches atom-ordering bugs: a wrong reorder changes which variables are
//! bound when an atom is evaluated, which shows up as missing or spurious
//! bindings here.

use proptest::prelude::*;
use reldb::{
    evaluate, Atom, Bindings, ConjunctiveQuery, PredicateKind, RelationalSchema, Skeleton, Term,
    Value,
};

/// Nested-loop reference evaluation: atoms in given order, full scans only.
fn naive_evaluate(
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
) -> Vec<Bindings> {
    let mut partials: Vec<Bindings> = vec![Bindings::new()];
    for atom in &query.atoms {
        let mut next: Vec<Bindings> = Vec::new();
        for binding in &partials {
            match schema.predicate_kind(&atom.predicate) {
                Some(PredicateKind::Entity) => {
                    for key in skeleton.entity_keys(&atom.predicate) {
                        if let Some(extended) =
                            try_extend(binding, &atom.terms, std::slice::from_ref(key))
                        {
                            next.push(extended);
                        }
                    }
                }
                Some(PredicateKind::Relationship) => {
                    for tuple in skeleton.relationship_tuples(&atom.predicate) {
                        if let Some(extended) = try_extend(binding, &atom.terms, tuple) {
                            next.push(extended);
                        }
                    }
                }
                None => {}
            }
        }
        partials = next;
    }
    partials
}

/// Unify an atom's terms with a concrete tuple under `binding`.
fn try_extend(binding: &Bindings, terms: &[Term], tuple: &[Value]) -> Option<Bindings> {
    if terms.len() != tuple.len() {
        return None;
    }
    let mut extended = binding.clone();
    for (term, value) in terms.iter().zip(tuple) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => match extended.get(v) {
                Some(bound) if bound != value => return None,
                Some(_) => {}
                None => {
                    extended.insert(v.clone(), value.clone());
                }
            },
        }
    }
    Some(extended)
}

/// Canonicalise a binding set for multiset comparison.
fn canonical(bindings: Vec<Bindings>) -> Vec<Vec<(String, String)>> {
    let mut rows: Vec<Vec<(String, String)>> = bindings
        .into_iter()
        .map(|b| {
            let mut row: Vec<(String, String)> =
                b.into_iter().map(|(k, v)| (k, v.key_repr())).collect();
            row.sort();
            row
        })
        .collect();
    rows.sort();
    rows
}

/// The randomised schema: two entity classes, a binary and a ternary
/// relationship — enough shape diversity for join-order bugs to surface.
fn schema() -> RelationalSchema {
    let mut s = RelationalSchema::new();
    s.add_entity("Person").unwrap();
    s.add_entity("Paper").unwrap();
    s.add_relationship("Writes", &["Person", "Paper"]).unwrap();
    s.add_relationship("Reviews", &["Person", "Paper", "Person"]).unwrap();
    s
}

fn skeleton_from(
    people: usize,
    papers: usize,
    writes: &[(usize, usize)],
    reviews: &[(usize, usize, usize)],
) -> Skeleton {
    let mut sk = Skeleton::new();
    for i in 0..people {
        sk.add_entity("Person", Value::from(format!("p{i}")));
    }
    for i in 0..papers {
        sk.add_entity("Paper", Value::from(format!("d{i}")));
    }
    for &(a, d) in writes {
        sk.add_relationship(
            "Writes",
            vec![Value::from(format!("p{a}")), Value::from(format!("d{d}"))],
        );
    }
    for &(a, d, b) in reviews {
        sk.add_relationship(
            "Reviews",
            vec![
                Value::from(format!("p{a}")),
                Value::from(format!("d{d}")),
                Value::from(format!("p{b}")),
            ],
        );
    }
    sk
}

/// Build one random atom. `shape` picks the predicate, `vars` the variable
/// names per position (variables are drawn from a tiny pool so repeats —
/// equality joins — are common), `konst` optionally turns a position into a
/// constant.
fn atom_from(shape: u8, vars: &[u8], konst: Option<(u8, u8)>) -> Atom {
    const POOL: [&str; 4] = ["A", "B", "C", "D"];
    let term = |pos: usize| -> Term {
        if let Some((p, k)) = konst {
            if usize::from(p) == pos {
                // Constants reference the small key space so they sometimes
                // hit and sometimes miss.
                return if shape.is_multiple_of(2) {
                    Term::constant(format!("p{}", k % 4))
                } else {
                    Term::constant(format!("d{}", k % 4))
                };
            }
        }
        Term::var(POOL[usize::from(vars[pos % vars.len()]) % POOL.len()])
    };
    match shape % 4 {
        0 => Atom::new("Person", vec![term(0)]),
        1 => Atom::new("Paper", vec![term(0)]),
        2 => Atom::new("Writes", vec![term(0), term(1)]),
        _ => Atom::new("Reviews", vec![term(0), term(1), term(2)]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Indexed, reordered evaluation returns exactly the reference binding
    /// multiset on random skeletons and random multi-atom queries.
    #[test]
    fn indexed_evaluation_matches_nested_loop_reference(
        writes in proptest::collection::vec((0usize..4, 0usize..4), 0..10),
        reviews in proptest::collection::vec((0usize..4, 0usize..4, 0usize..4), 0..8),
        shapes in proptest::collection::vec(
            (0u8..4, proptest::collection::vec(0u8..4, 3..4), proptest::option::of((0u8..3, 0u8..4))),
            1..4,
        ),
    ) {
        let schema = schema();
        let skeleton = skeleton_from(4, 4, &writes, &reviews);
        let query = ConjunctiveQuery::new(
            shapes
                .iter()
                .map(|(shape, vars, konst)| atom_from(*shape, vars, *konst))
                .collect(),
        );
        let fast = evaluate(&schema, &skeleton, &query).unwrap();
        let slow = naive_evaluate(&schema, &skeleton, &query);
        prop_assert_eq!(
            canonical(fast),
            canonical(slow),
            "query {} over {} writes / {} reviews",
            query,
            writes.len(),
            reviews.len()
        );
    }

    /// Single-atom queries with constants agree too (exercises the indexed
    /// probe path against the full scan).
    #[test]
    fn constant_probes_match_full_scans(
        writes in proptest::collection::vec((0usize..4, 0usize..4), 0..12),
        person in 0usize..6,
        position in 0usize..2,
    ) {
        let schema = schema();
        let skeleton = skeleton_from(4, 4, &writes, &[]);
        let terms = if position == 0 {
            vec![Term::constant(format!("p{person}")), Term::var("X")]
        } else {
            vec![Term::var("X"), Term::constant(format!("d{person}"))]
        };
        let query = ConjunctiveQuery::new(vec![Atom::new("Writes", terms)]);
        let fast = evaluate(&schema, &skeleton, &query).unwrap();
        let slow = naive_evaluate(&schema, &skeleton, &query);
        prop_assert_eq!(canonical(fast), canonical(slow));
    }
}

/// A deterministic adversarial case: the selectivity heuristic strongly
/// wants to reorder (one empty entity atom, one fat relationship atom), and
/// a repeated variable forces an equality join across atoms.
#[test]
fn reordering_with_repeated_variables_is_sound() {
    let schema = schema();
    let writes: Vec<(usize, usize)> = (0..4).flat_map(|a| (0..4).map(move |d| (a, d))).collect();
    let reviews = vec![(0, 1, 2), (1, 1, 1), (2, 3, 0)];
    let skeleton = skeleton_from(4, 4, &writes, &reviews);
    // Reviews(A, P, A): reviewer equals the reviewed author.
    let query = ConjunctiveQuery::new(vec![
        Atom::new("Writes", vec![Term::var("A"), Term::var("P")]),
        Atom::new("Reviews", vec![Term::var("A"), Term::var("P"), Term::var("A")]),
    ]);
    let fast = evaluate(&schema, &skeleton, &query).unwrap();
    let slow = naive_evaluate(&schema, &skeleton, &query);
    assert_eq!(canonical(fast), canonical(slow));
    // And the self-review case really matches only (1, 1, 1).
    assert_eq!(
        naive_evaluate(&schema, &skeleton, &query).len(),
        1
    );
}
