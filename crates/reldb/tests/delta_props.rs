//! Property-based tests for `apply_with_delta` — the typed delta stream
//! feeding incremental grounding.
//!
//! * Atomicity: a batch that fails validation changes nothing and leaks
//!   no partial state.
//! * No phantom retractions: deletes/clears aimed at never-present keys
//!   emit no delta ops and leave the fingerprint unchanged.
//! * Empty delta ⇒ identical fingerprint (the fast path may skip all
//!   work for such commits).
//! * Determinism: replaying a batch from the same base reproduces the
//!   same epoch and the same delta, and re-applying a batch to its own
//!   result is a fixpoint of the instance state.

use proptest::prelude::*;
use reldb::{DeltaOp, Instance, Mutation, Value};

fn person() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::from("Bob")),
        Just(Value::from("Carlos")),
        Just(Value::from("Eva")),
        Just(Value::from("Dana")),
    ]
}

fn submission() -> impl Strategy<Value = Value> {
    (1u8..5).prop_map(|i| Value::from(format!("s{i}")))
}

/// One random mutation over the review-example schema (plus the fresh
/// entities `Dana` and `s4`, inserted by [`seeded_batch`] so endpoints
/// always exist and mid-batch validation errors stay a separate test).
fn arb_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        person().prop_map(|key| Mutation::InsertEntity {
            entity: "Person".into(),
            key,
        }),
        submission().prop_map(|key| Mutation::InsertEntity {
            entity: "Submission".into(),
            key,
        }),
        (person(), submission()).prop_map(|(p, s)| Mutation::InsertRelationship {
            rel: "Author".into(),
            tuple: vec![p, s],
        }),
        (person(), submission()).prop_map(|(p, s)| Mutation::DeleteRelationship {
            rel: "Author".into(),
            tuple: vec![p, s],
        }),
        (person(), -100.0f64..100.0).prop_map(|(p, q)| Mutation::SetAttribute {
            attr: "Qualification".into(),
            key: vec![p],
            value: Value::Float(q),
        }),
        (submission(), -1.0f64..1.0).prop_map(|(s, v)| Mutation::SetAttribute {
            attr: "Score".into(),
            key: vec![s],
            value: Value::Float(v),
        }),
        person().prop_map(|p| Mutation::ClearAttribute {
            attr: "Qualification".into(),
            key: vec![p],
        }),
        submission().prop_map(|s| Mutation::ClearAttribute {
            attr: "Score".into(),
            key: vec![s],
        }),
    ]
}

/// Prefix a random batch with inserts of the two fresh entities so every
/// generated endpoint exists and the batch applies cleanly.
fn seeded_batch(muts: Vec<Mutation>) -> Vec<Mutation> {
    let mut batch = vec![
        Mutation::InsertEntity {
            entity: "Person".into(),
            key: Value::from("Dana"),
        },
        Mutation::InsertEntity {
            entity: "Submission".into(),
            key: Value::from("s4"),
        },
    ];
    batch.extend(muts);
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized batches: empty delta implies an unchanged fingerprint,
    /// replays are deterministic, and re-applying a batch to its own
    /// result is a state fixpoint (the mutation language is last-write-
    /// wins per cell/tuple).
    #[test]
    fn deltas_are_deterministic_and_track_effective_change(
        muts in proptest::collection::vec(arb_mutation(), 0..24),
    ) {
        let base = Instance::review_example();
        let batch = seeded_batch(muts);

        let (next, delta) = base.apply_with_delta(&batch).unwrap();
        if delta.is_empty() {
            prop_assert_eq!(base.fingerprint(), next.fingerprint());
        }
        // Structural flags agree with the op stream.
        prop_assert_eq!(
            delta.is_structural(),
            delta.ops().iter().any(DeltaOp::is_structural)
        );
        // Every changed cell names a touched attribute.
        let touched = delta.touched_attrs();
        for (attr, _) in delta.changed_cells() {
            prop_assert!(touched.contains(attr), "changed cell on untouched {attr}");
        }

        // Replay determinism: same base + same batch ⇒ same epoch, same delta.
        let (next2, delta2) = base.apply_with_delta(&batch).unwrap();
        prop_assert_eq!(next.fingerprint(), next2.fingerprint());
        prop_assert_eq!(&delta, &delta2);

        // Re-applying the batch to its own result is a *logical* fixpoint:
        // same entities, same relationship sets, same attribute cells. (The
        // fingerprint may still differ — a delete/insert pair over a present
        // tuple rotates storage order, which the fingerprint observes.)
        let (fixed, _) = next.apply_with_delta(&batch).unwrap();
        for entity in ["Person", "Submission", "Conference"] {
            let mut a = next.skeleton().entity_keys(entity).to_vec();
            let mut b = fixed.skeleton().entity_keys(entity).to_vec();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "entity set drifted for {}", entity);
        }
        for rel in ["Author", "Submitted"] {
            let mut a = next.skeleton().relationship_tuples(rel).to_vec();
            let mut b = fixed.skeleton().relationship_tuples(rel).to_vec();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "relationship set drifted for {}", rel);
        }
        for (attr, keys) in [
            ("Qualification", ["Bob", "Carlos", "Eva", "Dana"]),
            ("Score", ["s1", "s2", "s3", "s4"]),
        ] {
            for key in keys {
                let key = [Value::from(key)];
                prop_assert_eq!(
                    next.attribute(attr, &key),
                    fixed.attribute(attr, &key),
                    "cell drifted for {}[{:?}]",
                    attr,
                    &key[0]
                );
            }
        }
    }

    /// Deletes and clears aimed at keys that were never present emit NO
    /// delta ops (no phantom retractions) and leave the epoch identical.
    #[test]
    fn absent_key_retractions_emit_no_phantom_deltas(
        muts in proptest::collection::vec(
            prop_oneof![
                (person(), submission()).prop_map(|(p, s)| Mutation::DeleteRelationship {
                    rel: "Author".into(),
                    tuple: vec![p, s],
                }),
                person().prop_map(|p| Mutation::ClearAttribute {
                    attr: "Qualification".into(),
                    key: vec![p],
                }),
                submission().prop_map(|s| Mutation::ClearAttribute {
                    attr: "Score".into(),
                    key: vec![s],
                }),
            ],
            1..16,
        ),
    ) {
        // Set up an instance where Dana and s4 exist but carry no
        // attributes or authorships, then keep only the retractions whose
        // target is absent from it.
        let (setup, _) = Instance::review_example()
            .apply_with_delta(&seeded_batch(vec![]))
            .unwrap();
        let absent: Vec<Mutation> = muts
            .into_iter()
            .filter(|m| match m {
                Mutation::DeleteRelationship { rel, tuple } => {
                    !setup.skeleton().relationship_tuples(rel).contains(tuple)
                }
                Mutation::ClearAttribute { attr, key } => {
                    setup.attribute(attr, key).is_none()
                }
                _ => unreachable!("strategy only yields retractions"),
            })
            .collect();
        if !absent.is_empty() {
            let (next, delta) = setup.apply_with_delta(&absent).unwrap();
            prop_assert!(
                delta.is_empty(),
                "phantom retraction ops: {:?}",
                delta.ops()
            );
            prop_assert_eq!(setup.fingerprint(), next.fingerprint());
        }
    }

    /// A batch poisoned anywhere by an invalid mutation fails as a whole:
    /// the error surfaces, the base is untouched, and no partial epoch or
    /// delta escapes.
    #[test]
    fn poisoned_batches_fail_atomically(
        muts in proptest::collection::vec(arb_mutation(), 0..12),
        poison_at in 0usize..13,
    ) {
        let base = Instance::review_example();
        let before = base.fingerprint();

        let mut batch = seeded_batch(muts);
        let at = 2 + poison_at.min(batch.len() - 2); // after the seed inserts
        batch.insert(at, Mutation::InsertRelationship {
            rel: "NoSuchRel".into(),
            tuple: vec![Value::from("Bob"), Value::from("s1")],
        });

        prop_assert!(base.apply_with_delta(&batch).is_err());
        prop_assert_eq!(base.fingerprint(), before);

        // Removing the poison makes the same batch apply cleanly.
        batch.remove(at);
        prop_assert!(base.apply_with_delta(&batch).is_ok());
    }
}
