//! Lazily built, cached secondary hash indexes over skeletons and
//! attribute tables.
//!
//! The skeleton maintains single-position indexes eagerly (they are cheap
//! and universally useful). Everything beyond that — composite indexes over
//! several key positions at once, and equality indexes over attribute
//! assignments — is built on demand by an [`IndexCache`] the first time a
//! query plan probes it, then reused by every later query over the same
//! instance.
//!
//! Invalidation is by content fingerprint: a cache remembers the
//! [`Skeleton::fingerprint`] / [`Instance::fingerprint`] it was built
//! against, and [`IndexCache::revalidate`] drops every index when the
//! content has changed. The engine constructs one cache per (immutable)
//! instance, so in steady state indexes are built exactly once.

use crate::instance::Instance;
use crate::plan::Plan;
use crate::skeleton::{Skeleton, UnitKey};
use crate::symbols::{Sym, SymMap};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A hash index over the tuples of one relationship, keyed by the interned
/// symbols at a fixed set of positions.
///
/// `positions` is sorted and deduplicated; bucket keys are the tuple
/// symbols at those positions, in the same order (see
/// [`Skeleton::interner`]) — probing hashes a handful of `u32`s instead of
/// heap values. Buckets store row indexes into
/// [`Skeleton::relationship_tuples`], in insertion order, so probe results
/// are deterministic.
#[derive(Debug)]
pub struct CompositeIndex {
    positions: Vec<usize>,
    buckets: SymMap<Vec<Sym>, Vec<u32>>,
}

impl CompositeIndex {
    /// Build the index for `rel` over `positions` (sorted). Tuples too
    /// short to have every indexed position are skipped: `Skeleton` does
    /// not enforce arity, and such tuples can never unify with a
    /// schema-arity atom anyway.
    fn build(skeleton: &Skeleton, rel: &str, positions: &[usize]) -> Self {
        let mut buckets: SymMap<Vec<Sym>, Vec<u32>> = SymMap::default();
        for (row, tuple) in skeleton.relationship_syms(rel).iter().enumerate() {
            if positions.iter().any(|&p| p >= tuple.len()) {
                continue;
            }
            let key: Vec<Sym> = positions.iter().map(|&p| tuple[p]).collect();
            buckets.entry(key).or_default().push(row as u32);
        }
        Self {
            positions: positions.to_vec(),
            buckets,
        }
    }

    /// The positions this index is keyed on.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Row indexes whose symbols at the indexed positions equal `key`.
    pub fn rows(&self, key: &[Sym]) -> &[u32] {
        self.buckets.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct composite keys.
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }
}

/// An equality index over one attribute's assignments: value → unit keys
/// carrying that value.
///
/// Buckets are sorted by unit key so iteration order is deterministic
/// across processes (the underlying assignment map is a `HashMap`).
#[derive(Debug)]
pub struct AttributeIndex {
    buckets: HashMap<Value, Vec<UnitKey>>,
}

impl AttributeIndex {
    fn build(instance: &Instance, attr: &str) -> Self {
        let mut buckets: HashMap<Value, Vec<UnitKey>> = HashMap::new();
        for (key, value) in instance.attribute_assignments(attr) {
            buckets.entry(value.clone()).or_default().push(key.clone());
        }
        for bucket in buckets.values_mut() {
            bucket.sort();
        }
        Self { buckets }
    }

    /// Unit keys whose attribute value equals `value` (sorted).
    pub fn units(&self, value: &Value) -> &[UnitKey] {
        self.buckets.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of units carrying `value`.
    pub fn cardinality(&self, value: &Value) -> usize {
        self.buckets.get(value).map_or(0, Vec::len)
    }
}

/// Counters describing how an [`IndexCache`] has been used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexCacheStats {
    /// Number of indexes built (cache misses).
    pub builds: usize,
    /// Number of index requests served from the cache (hits).
    pub hits: usize,
    /// Number of invalidations triggered by a fingerprint change.
    pub invalidations: usize,
}

/// Counters describing the shape-keyed plan cache of an [`IndexCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Template lookups answered from the cache.
    pub hits: usize,
    /// Template lookups that found no entry (followed by a cold plan).
    pub misses: usize,
    /// Number of templates currently stored.
    pub entries: usize,
}

/// Key of a cached composite index: (relationship name, sorted positions).
type CompositeKey = (String, Vec<usize>);

/// A fingerprint-validated cache of lazily built secondary indexes.
///
/// Shareable across threads (`&self` everywhere, internal locking); clones
/// of an engine share one cache via `Arc`.
#[derive(Debug)]
pub struct IndexCache {
    /// Fingerprint of the content the indexes were built from.
    fingerprint: Mutex<u64>,
    composite: Mutex<HashMap<CompositeKey, Arc<CompositeIndex>>>,
    attribute: Mutex<HashMap<String, Arc<AttributeIndex>>>,
    /// Plan templates keyed by query shape ([`crate::plan::shape_key`]):
    /// queries repeating a shape with different constants skip planning via
    /// [`crate::plan::instantiate`].
    plans: Mutex<HashMap<String, Arc<Plan>>>,
    builds: AtomicUsize,
    hits: AtomicUsize,
    invalidations: AtomicUsize,
    plan_hits: AtomicUsize,
    plan_misses: AtomicUsize,
}

impl IndexCache {
    /// An empty cache bound to an explicit content fingerprint (typically
    /// [`Instance::fingerprint`], already computed by the caller).
    pub fn with_fingerprint(fingerprint: u64) -> Self {
        Self {
            fingerprint: Mutex::new(fingerprint),
            composite: Mutex::new(HashMap::new()),
            attribute: Mutex::new(HashMap::new()),
            plans: Mutex::new(HashMap::new()),
            builds: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            invalidations: AtomicUsize::new(0),
            plan_hits: AtomicUsize::new(0),
            plan_misses: AtomicUsize::new(0),
        }
    }

    /// An empty cache bound to `instance`'s content fingerprint.
    pub fn for_instance(instance: &Instance) -> Self {
        Self::with_fingerprint(instance.fingerprint())
    }

    /// An empty cache bound to `skeleton`'s content fingerprint (no
    /// attribute indexes will be consistent with an instance's attributes;
    /// use [`IndexCache::for_instance`] when filters are involved).
    pub fn for_skeleton(skeleton: &Skeleton) -> Self {
        Self::with_fingerprint(skeleton.fingerprint())
    }

    /// Drop every cached index if `fingerprint` differs from the one the
    /// cache was built against, and rebind to the new fingerprint. Returns
    /// whether an invalidation happened.
    pub fn revalidate(&self, fingerprint: u64) -> bool {
        let mut current = self
            .fingerprint
            .lock()
            .expect("index cache fingerprint lock");
        if *current == fingerprint {
            return false;
        }
        *current = fingerprint;
        self.composite.lock().expect("composite index lock").clear();
        self.attribute.lock().expect("attribute index lock").clear();
        // Plan templates stay *correct* across content changes (a plan's
        // semantics never depend on data), but their join orders and cost
        // estimates were chosen for the old content; drop them so the new
        // epoch replans against its own cardinalities.
        self.plans.lock().expect("plan template lock").clear();
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The fingerprint the cached indexes are valid for.
    pub fn fingerprint(&self) -> u64 {
        *self
            .fingerprint
            .lock()
            .expect("index cache fingerprint lock")
    }

    /// The composite index of `rel` over `positions` (sorted), building it
    /// on first request.
    pub fn relationship_index(
        &self,
        skeleton: &Skeleton,
        rel: &str,
        positions: &[usize],
    ) -> Arc<CompositeIndex> {
        let key = (rel.to_string(), positions.to_vec());
        let mut map = self.composite.lock().expect("composite index lock");
        if let Some(hit) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let built = Arc::new(CompositeIndex::build(skeleton, rel, positions));
        self.builds.fetch_add(1, Ordering::Relaxed);
        map.insert(key, Arc::clone(&built));
        built
    }

    /// The equality index of attribute `attr`, building it on first request.
    pub fn attribute_index(&self, instance: &Instance, attr: &str) -> Arc<AttributeIndex> {
        let mut map = self.attribute.lock().expect("attribute index lock");
        if let Some(hit) = map.get(attr) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let built = Arc::new(AttributeIndex::build(instance, attr));
        self.builds.fetch_add(1, Ordering::Relaxed);
        map.insert(attr.to_string(), Arc::clone(&built));
        built
    }

    /// The cached plan template for `shape` (see [`crate::plan::shape_key`]),
    /// counting a hit or miss.
    pub fn plan_template(&self, shape: &str) -> Option<Arc<Plan>> {
        let map = self.plans.lock().expect("plan template lock");
        match map.get(shape) {
            Some(plan) => {
                self.plan_hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(plan))
            }
            None => {
                self.plan_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `plan` as the template for `shape`. Last writer wins: two
    /// threads planning the same fresh shape concurrently both produce a
    /// correct template (the planner is deterministic, so they are equal).
    pub fn store_plan_template(&self, shape: String, plan: Arc<Plan>) {
        self.plans
            .lock()
            .expect("plan template lock")
            .insert(shape, plan);
    }

    /// Usage counters of the shape-keyed plan cache.
    pub fn plan_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.plan_hits.load(Ordering::Relaxed),
            misses: self.plan_misses.load(Ordering::Relaxed),
            entries: self.plans.lock().expect("plan template lock").len(),
        }
    }

    /// A new cache for the epoch fingerprinted `fingerprint`, inheriting
    /// every index of `self` that an **attribute-only** delta cannot
    /// invalidate.
    ///
    /// Contract (the caller asserts it, typically from a
    /// [`crate::DeltaSet`] with `is_structural() == false`): the new
    /// epoch's *skeleton* is identical to the one `self`'s indexes were
    /// built from, and only attribute cells of the attrs in
    /// `changed_attrs` differ. Then:
    ///
    /// * composite indexes are skeleton-only → all shared (`Arc` clone);
    /// * attribute indexes of *unchanged* attrs are shared; changed attrs
    ///   are dropped and lazily rebuilt against the new epoch;
    /// * plan templates are **kept** — unlike [`IndexCache::revalidate`]
    ///   (which faces arbitrary content changes), an attribute-only delta
    ///   leaves every relationship cardinality the plans were costed
    ///   against untouched, and a template is always *correct* regardless
    ///   (join order never affects results), so replanning per patched
    ///   epoch would only burn the write-heavy fast path's latency budget.
    ///
    /// Counters start fresh: the inherited indexes were built by the old
    /// epoch and are free here.
    pub fn rebase_for_attribute_delta(
        &self,
        fingerprint: u64,
        changed_attrs: &std::collections::BTreeSet<&str>,
    ) -> IndexCache {
        let composite = self.composite.lock().expect("composite index lock").clone();
        let attribute: HashMap<String, Arc<AttributeIndex>> = self
            .attribute
            .lock()
            .expect("attribute index lock")
            .iter()
            .filter(|(attr, _)| !changed_attrs.contains(attr.as_str()))
            .map(|(attr, idx)| (attr.clone(), Arc::clone(idx)))
            .collect();
        let plans = self.plans.lock().expect("plan template lock").clone();
        IndexCache {
            fingerprint: Mutex::new(fingerprint),
            composite: Mutex::new(composite),
            attribute: Mutex::new(attribute),
            plans: Mutex::new(plans),
            builds: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            invalidations: AtomicUsize::new(0),
            plan_hits: AtomicUsize::new(0),
            plan_misses: AtomicUsize::new(0),
        }
    }

    /// Usage counters (builds, hits, invalidations).
    pub fn stats(&self) -> IndexCacheStats {
        IndexCacheStats {
            builds: self.builds.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_index_probes_multi_position_keys() {
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let idx = cache.relationship_index(inst.skeleton(), "Author", &[0, 1]);
        let sym = |v: Value| inst.skeleton().interner().get(&v).unwrap();
        let rows = idx.rows(&[sym(Value::from("Eva")), sym(Value::from("s2"))]);
        assert_eq!(rows.len(), 1);
        assert_eq!(
            inst.skeleton().relationship_tuples("Author")[rows[0] as usize],
            vec![Value::from("Eva"), Value::from("s2")]
        );
        assert!(idx
            .rows(&[sym(Value::from("Bob")), sym(Value::from("s3"))])
            .is_empty());
        assert_eq!(idx.distinct_keys(), 5);
        assert_eq!(idx.positions(), &[0, 1]);
    }

    #[test]
    fn indexes_are_built_once_and_hit_afterwards() {
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        assert_eq!(cache.stats(), IndexCacheStats::default());
        cache.relationship_index(inst.skeleton(), "Author", &[0, 1]);
        cache.relationship_index(inst.skeleton(), "Author", &[0, 1]);
        cache.attribute_index(&inst, "Blind");
        cache.attribute_index(&inst, "Blind");
        let stats = cache.stats();
        assert_eq!(stats.builds, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.invalidations, 0);
    }

    #[test]
    fn attribute_index_buckets_are_sorted_and_complete() {
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let idx = cache.attribute_index(&inst, "Prestige");
        // Bob and Eva are prestigious (1), Carlos is not (0).
        let prestigious = idx.units(&Value::Int(1));
        assert_eq!(
            prestigious,
            &[vec![Value::from("Bob")], vec![Value::from("Eva")]]
        );
        assert_eq!(idx.cardinality(&Value::Int(0)), 1);
        assert_eq!(idx.cardinality(&Value::Int(7)), 0);
    }

    #[test]
    fn plan_templates_are_cached_by_shape_and_dropped_on_revalidation() {
        use crate::plan::{plan_query, shape_key};
        use crate::query::{Atom, ConjunctiveQuery, Term};

        let mut inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        assert_eq!(cache.plan_stats(), PlanCacheStats::default());

        let q = ConjunctiveQuery::new(vec![Atom::new(
            "Author",
            vec![Term::var("A"), Term::constant("s3")],
        )]);
        let shape = shape_key(&q, &[]);
        assert!(cache.plan_template(&shape).is_none());
        let plan = Arc::new(plan_query(inst.schema(), inst.skeleton(), &q).unwrap());
        cache.store_plan_template(shape.clone(), Arc::clone(&plan));
        let hit = cache.plan_template(&shape).expect("stored template");
        assert_eq!(*hit, *plan);
        let stats = cache.plan_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

        // Content change → revalidation drops the templates with the rest.
        inst.add_entity("Person", Value::from("Dana")).unwrap();
        assert!(cache.revalidate(inst.fingerprint()));
        assert!(cache.plan_template(&shape).is_none());
        assert_eq!(cache.plan_stats().entries, 0);
    }

    #[test]
    fn rebase_shares_survivors_and_drops_changed_attrs() {
        use std::collections::BTreeSet;

        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let composite = cache.relationship_index(inst.skeleton(), "Author", &[0, 1]);
        let blind = cache.attribute_index(&inst, "Blind");
        let score = cache.attribute_index(&inst, "Score");
        let query = crate::ConjunctiveQuery::new(vec![crate::Atom::new(
            "Author",
            vec![crate::Term::var("A"), crate::Term::var("S")],
        )]);
        let template =
            Arc::new(crate::plan::plan_query(inst.schema(), inst.skeleton(), &query).unwrap());
        cache.store_plan_template(crate::plan::shape_key(&query, &[]), Arc::clone(&template));

        // Attribute-only epoch change: Score rewritten, skeleton untouched.
        let next = inst
            .apply(&[crate::Mutation::SetAttribute {
                attr: "Score".into(),
                key: vec![Value::from("s1")],
                value: Value::Float(0.9),
            }])
            .unwrap();
        let changed: BTreeSet<&str> = ["Score"].into_iter().collect();
        let rebased = cache.rebase_for_attribute_delta(next.fingerprint(), &changed);
        assert_eq!(rebased.fingerprint(), next.fingerprint());
        assert_eq!(rebased.stats(), IndexCacheStats::default());

        // Skeleton-only composite index is shared, not rebuilt.
        let composite2 = rebased.relationship_index(next.skeleton(), "Author", &[0, 1]);
        assert!(Arc::ptr_eq(&composite, &composite2));
        // Unchanged attribute index is shared too.
        let blind2 = rebased.attribute_index(&next, "Blind");
        assert!(Arc::ptr_eq(&blind, &blind2));
        // The changed attr was dropped and rebuilds against the new epoch.
        let score2 = rebased.attribute_index(&next, "Score");
        assert!(!Arc::ptr_eq(&score, &score2));
        assert_eq!(score2.cardinality(&Value::Float(0.9)), 1);
        assert_eq!(score2.cardinality(&Value::Float(0.75)), 0);
        // Sharing counts as hits on the rebased cache, one build for Score.
        assert_eq!(rebased.stats().builds, 1);
        // Plan templates ride along: the skeleton (and so every relationship
        // cardinality the planner costed) is unchanged by an attribute delta.
        assert_eq!(rebased.plan_stats().entries, 1);
        let carried = rebased
            .plan_template(&crate::plan::shape_key(&query, &[]))
            .expect("template survives the rebase");
        assert!(Arc::ptr_eq(&carried, &template));
    }

    #[test]
    fn revalidation_drops_stale_indexes() {
        let mut inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let key_of = |inst: &Instance| {
            let interner = inst.skeleton().interner();
            [
                interner.get(&Value::from("Carlos")).unwrap(),
                interner.get(&Value::from("s1")).unwrap(),
            ]
        };
        let idx = cache.relationship_index(inst.skeleton(), "Author", &[0, 1]);
        assert_eq!(idx.rows(&key_of(&inst)).len(), 0);

        inst.add_relationship("Author", vec![Value::from("Carlos"), Value::from("s1")])
            .unwrap();
        assert!(cache.revalidate(inst.fingerprint()));
        assert!(
            !cache.revalidate(inst.fingerprint()),
            "second call is a no-op"
        );
        let idx = cache.relationship_index(inst.skeleton(), "Author", &[0, 1]);
        assert_eq!(idx.rows(&key_of(&inst)).len(), 1);
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.fingerprint(), inst.fingerprint());
    }
}
