//! Value interning: dense `u32` symbols for the tuple executor.
//!
//! The hash-join executor used to carry heap `Value`s (and hash freshly
//! allocated `key_repr` strings) through every probe. Interning maps each
//! distinct [`Value`] appearing in a skeleton to a dense [`Sym`] once at
//! load; from then on the whole join pipeline — index keys, register
//! tuples, semi-join membership tests — moves 4-byte symbols around and
//! compares them with a single integer comparison.
//!
//! Symbol equality coincides exactly with [`Value`] equality: the interner
//! deduplicates through `Value`'s own `Eq`/`Hash`, so two values receive
//! the same symbol iff they compare equal (including the cross-type
//! `Int(2) == Float(2.0)` coercion). Resolution returns the first-interned
//! representative of the equivalence class.

use crate::value::Value;
use std::collections::HashMap;

/// A dense interned symbol standing for one distinct [`Value`].
///
/// Symbols are only meaningful relative to the [`SymbolTable`] that issued
/// them; they are never reused or remapped while the table lives (the table
/// is append-only), so a symbol obtained once stays valid for the lifetime
/// of its skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// A sentinel symbol used for register slots that have not been written
    /// yet. Never issued by a [`SymbolTable`].
    pub const UNBOUND: Sym = Sym(u32::MAX);

    /// The dense index of this symbol (its position in the issuing table).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only intern table mapping distinct [`Value`]s to dense
/// [`Sym`]s and back.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    values: Vec<Value>,
    lookup: HashMap<Value, Sym>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `value`, returning its symbol (allocating one on first sight).
    pub fn intern(&mut self, value: &Value) -> Sym {
        if let Some(&sym) = self.lookup.get(value) {
            return sym;
        }
        let index = u32::try_from(self.values.len()).expect("more than u32::MAX distinct values");
        // Sym::UNBOUND (u32::MAX) is reserved as the executor's
        // unwritten-register sentinel and must never be issued.
        assert!(index < u32::MAX, "symbol space exhausted");
        let sym = Sym(index);
        self.values.push(value.clone());
        self.lookup.insert(value.clone(), sym);
        sym
    }

    /// The symbol of `value`, if it has been interned.
    pub fn get(&self, value: &Value) -> Option<Sym> {
        self.lookup.get(value).copied()
    }

    /// The raw `u32` symbol index of `value`, if it has been interned.
    /// Convenience for signature builders that store packed symbol ids.
    pub fn get_u32(&self, value: &Value) -> Option<u32> {
        self.lookup.get(value).map(|s| s.0)
    }

    /// Resolve a symbol back to (the first-interned representative of) its
    /// value.
    ///
    /// # Panics
    /// Panics if `sym` was not issued by this table (including
    /// [`Sym::UNBOUND`]).
    pub fn value(&self, sym: Sym) -> &Value {
        &self.values[sym.index()]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A fast, deterministic hasher for symbol-derived keys (FxHash-style
/// multiply-rotate). Symbols are small dense integers, so the default
/// SipHash's DoS resistance buys nothing here while costing a large share
/// of every index probe; this hasher is a handful of ALU ops.
///
/// Only used for probe-only maps (buckets, memo tables, admit sets) whose
/// iteration order is never observed, so the weaker distribution cannot
/// leak nondeterminism into results.
#[derive(Debug, Default, Clone, Copy)]
pub struct SymHasher(u64);

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl std::hash::Hasher for SymHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(SEED);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0.rotate_left(5) ^ u64::from(n)).wrapping_mul(SEED);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(SEED);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u32(u32::from(n));
    }
}

/// Build-hasher for [`SymHasher`]-keyed maps and sets.
pub type SymBuildHasher = std::hash::BuildHasherDefault<SymHasher>;

/// A `HashMap` keyed by symbols (or small symbol tuples) with the fast
/// deterministic hasher.
pub type SymMap<K, V> = std::collections::HashMap<K, V, SymBuildHasher>;

/// A `HashSet` of symbols (or small symbol tuples) with the fast
/// deterministic hasher.
pub type SymSet<K> = std::collections::HashSet<K, SymBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern(&Value::from("Bob"));
        let b = t.intern(&Value::from("Eva"));
        let a2 = t.intern(&Value::from("Bob"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(t.value(a), &Value::from("Bob"));
        assert_eq!(t.get(&Value::from("Eva")), Some(b));
        assert_eq!(t.get(&Value::from("Ghost")), None);
    }

    #[test]
    fn symbol_equality_matches_value_equality() {
        // Int(2) == Float(2.0) per Value::eq, so they share a symbol and
        // resolve to the first-interned representative.
        let mut t = SymbolTable::new();
        let i = t.intern(&Value::Int(2));
        let f = t.intern(&Value::Float(2.0));
        assert_eq!(i, f);
        assert_eq!(t.value(f), &Value::Int(2));
        // Distinct floats (bitwise) get distinct symbols.
        let nan1 = t.intern(&Value::Float(f64::NAN));
        let nan2 = t.intern(&Value::Float(f64::NAN));
        assert_eq!(nan1, nan2, "identical bit patterns intern identically");
    }

    #[test]
    fn unbound_sentinel_is_never_issued() {
        let mut t = SymbolTable::new();
        let s = t.intern(&Value::Null);
        assert_ne!(s, Sym::UNBOUND);
    }
}
