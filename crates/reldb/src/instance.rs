//! Observed relational instances: a skeleton plus attribute assignments
//! (Section 3.1).

use crate::error::{RelError, RelResult};
use crate::schema::{PredicateKind, RelationalSchema};
use crate::skeleton::{Skeleton, UnitKey};
use crate::value::{fnv1a, Value, FNV_OFFSET};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// A single edit to an [`Instance`], applied in batches by
/// [`Instance::apply`] to produce a new immutable epoch.
///
/// Mutations are plain data so a recorded history of committed batches can
/// be replayed deterministically by a checker: applying the same batches to
/// the same base instance reproduces the same epoch instances (and hence
/// the same [`Instance::fingerprint`] per epoch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mutation {
    /// Add a grounded entity (idempotent, like [`Instance::add_entity`]).
    InsertEntity {
        /// Entity class name.
        entity: String,
        /// Key of the new entity.
        key: Value,
    },
    /// Add a relationship tuple (idempotent; arity and referential
    /// integrity checked, like [`Instance::add_relationship`]).
    InsertRelationship {
        /// Relationship name.
        rel: String,
        /// The tuple to insert.
        tuple: UnitKey,
    },
    /// Remove a relationship tuple (no-op if absent).
    DeleteRelationship {
        /// Relationship name.
        rel: String,
        /// The tuple to remove.
        tuple: UnitKey,
    },
    /// Assign (insert or overwrite) an attribute value, with domain and
    /// arity checks, like [`Instance::set_attribute`].
    SetAttribute {
        /// Attribute name.
        attr: String,
        /// Unit key the value attaches to.
        key: UnitKey,
        /// The value to assign.
        value: Value,
    },
    /// Remove an attribute assignment (no-op if unassigned).
    ClearAttribute {
        /// Attribute name.
        attr: String,
        /// Unit key whose assignment is removed.
        key: UnitKey,
    },
}

/// An observed relational instance conforming to a [`RelationalSchema`].
///
/// The instance owns its schema, its relational skeleton, and one map per
/// attribute function from unit keys to values. Unobserved attribute
/// functions (e.g. `Quality[S]` in the running example) simply have no
/// stored assignments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    schema: RelationalSchema,
    skeleton: Skeleton,
    /// attribute name → (unit key → value)
    attributes: BTreeMap<String, HashMap<UnitKey, Value>>,
}

impl Instance {
    /// Create an empty instance over `schema`.
    pub fn new(schema: RelationalSchema) -> Self {
        Self {
            schema,
            skeleton: Skeleton::new(),
            attributes: BTreeMap::new(),
        }
    }

    /// The schema this instance conforms to.
    pub fn schema(&self) -> &RelationalSchema {
        &self.schema
    }

    /// The relational skeleton Δ of this instance.
    pub fn skeleton(&self) -> &Skeleton {
        &self.skeleton
    }

    /// Add a grounded entity.
    pub fn add_entity(&mut self, entity: &str, key: Value) -> RelResult<()> {
        match self.schema.require_predicate(entity)? {
            PredicateKind::Entity => {
                self.skeleton.add_entity(entity, key);
                Ok(())
            }
            PredicateKind::Relationship => Err(RelError::UnknownPredicate(format!(
                "`{entity}` is a relationship, not an entity"
            ))),
        }
    }

    /// Add a grounded relationship tuple, checking arity and that the
    /// referenced entities exist.
    pub fn add_relationship(&mut self, rel: &str, tuple: UnitKey) -> RelResult<()> {
        let positions = self
            .schema
            .predicate_positions(rel)
            .ok_or_else(|| RelError::UnknownPredicate(rel.to_string()))?;
        if self.schema.predicate_kind(rel) != Some(PredicateKind::Relationship) {
            return Err(RelError::UnknownPredicate(format!(
                "`{rel}` is an entity, not a relationship"
            )));
        }
        if tuple.len() != positions.len() {
            return Err(RelError::ArityMismatch {
                predicate: rel.to_string(),
                expected: positions.len(),
                actual: tuple.len(),
            });
        }
        for (entity, key) in positions.iter().zip(tuple.iter()) {
            if !self.skeleton.has_entity(entity, key) {
                return Err(RelError::DanglingReference {
                    rel: rel.to_string(),
                    entity: entity.clone(),
                    key: key.to_string(),
                });
            }
        }
        self.skeleton.add_relationship(rel, tuple);
        Ok(())
    }

    /// Assign `value` to attribute `attr` of the unit identified by `key`.
    pub fn set_attribute(&mut self, attr: &str, key: &[Value], value: Value) -> RelResult<()> {
        let def = self.schema.require_attribute(attr)?.clone();
        let arity = self
            .schema
            .predicate_arity(&def.subject)
            .expect("attribute subject must be a declared predicate");
        if key.len() != arity {
            return Err(RelError::ArityMismatch {
                predicate: def.subject.clone(),
                expected: arity,
                actual: key.len(),
            });
        }
        if !def.domain.admits(&value) {
            return Err(RelError::DomainMismatch {
                attribute: attr.to_string(),
                domain: def.domain.to_string(),
                value: value.to_string(),
            });
        }
        self.attributes
            .entry(attr.to_string())
            .or_default()
            .insert(key.to_vec(), value);
        Ok(())
    }

    /// Remove a relationship tuple. Returns `Ok(true)` if the tuple was
    /// present, `Ok(false)` if absent; errors only on an unknown or
    /// non-relationship predicate.
    pub fn delete_relationship(&mut self, rel: &str, tuple: &[Value]) -> RelResult<bool> {
        if self.schema.predicate_positions(rel).is_none() {
            return Err(RelError::UnknownPredicate(rel.to_string()));
        }
        if self.schema.predicate_kind(rel) != Some(PredicateKind::Relationship) {
            return Err(RelError::UnknownPredicate(format!(
                "`{rel}` is an entity, not a relationship"
            )));
        }
        Ok(self.skeleton.remove_relationship(rel, tuple))
    }

    /// Remove the assignment of attribute `attr` for unit `key`. Returns
    /// `Ok(true)` if an assignment was present; errors on an unknown
    /// attribute.
    pub fn clear_attribute(&mut self, attr: &str, key: &[Value]) -> RelResult<bool> {
        self.schema.require_attribute(attr)?;
        Ok(self
            .attributes
            .get_mut(attr)
            .is_some_and(|m| m.remove(key).is_some()))
    }

    /// Apply a batch of [`Mutation`]s to a copy of this instance, returning
    /// the mutated copy as a new immutable epoch. `self` is untouched —
    /// readers holding it keep a consistent snapshot while the returned
    /// instance becomes the next epoch.
    ///
    /// The batch is atomic: the first failing mutation aborts the whole
    /// application and no partial epoch is produced. Application order is
    /// the slice order, so replaying recorded batches is deterministic.
    pub fn apply(&self, mutations: &[Mutation]) -> RelResult<Instance> {
        let mut next = self.clone();
        for m in mutations {
            match m {
                Mutation::InsertEntity { entity, key } => {
                    next.add_entity(entity, key.clone())?;
                }
                Mutation::InsertRelationship { rel, tuple } => {
                    next.add_relationship(rel, tuple.clone())?;
                }
                Mutation::DeleteRelationship { rel, tuple } => {
                    next.delete_relationship(rel, tuple)?;
                }
                Mutation::SetAttribute { attr, key, value } => {
                    next.set_attribute(attr, key, value.clone())?;
                }
                Mutation::ClearAttribute { attr, key } => {
                    next.clear_attribute(attr, key)?;
                }
            }
        }
        Ok(next)
    }

    /// Read the value of attribute `attr` for unit `key`, if assigned.
    pub fn attribute(&self, attr: &str, key: &[Value]) -> Option<&Value> {
        self.attributes.get(attr)?.get(key)
    }

    /// Read the value of `attr` for `key` as an `f64`, treating missing or
    /// non-numeric values as `None`.
    pub fn attribute_f64(&self, attr: &str, key: &[Value]) -> Option<f64> {
        self.attribute(attr, key).and_then(Value::as_f64)
    }

    /// Number of stored assignments for attribute `attr`.
    pub fn attribute_count(&self, attr: &str) -> usize {
        self.attributes.get(attr).map_or(0, HashMap::len)
    }

    /// Iterate over all assignments of attribute `attr`.
    pub fn attribute_assignments(&self, attr: &str) -> impl Iterator<Item = (&UnitKey, &Value)> {
        self.attributes.get(attr).into_iter().flat_map(|m| m.iter())
    }

    /// All units of the predicate that attribute `attr` attaches to.
    pub fn units_of_attribute(&self, attr: &str) -> RelResult<Vec<UnitKey>> {
        let def = self.schema.require_attribute(attr)?;
        self.skeleton.units_of(&self.schema, &def.subject)
    }

    /// Validate skeleton referential integrity.
    pub fn validate(&self) -> RelResult<()> {
        self.skeleton.validate(&self.schema)
    }

    /// A stable 64-bit fingerprint of the full instance content: the
    /// skeleton ([`Skeleton::fingerprint`]) combined with every attribute
    /// assignment. Grounding consumes both (derived aggregate values read
    /// attribute assignments), so this — not the skeleton fingerprint
    /// alone — is the correct grounding-cache key: any content change,
    /// structural or attributive, changes the fingerprint.
    ///
    /// Attribute assignments live in hash maps with nondeterministic
    /// iteration order, so their contribution is combined with an
    /// order-independent XOR of per-entry hashes.
    pub fn fingerprint(&self) -> u64 {
        let fnv = fnv1a;
        let mut h = self.skeleton.fingerprint();
        for (attr, assignments) in &self.attributes {
            fnv(&mut h, attr.as_bytes());
            fnv(&mut h, &[0xfa]);
            let mut combined: u64 = 0;
            for (key, value) in assignments {
                let mut entry = FNV_OFFSET;
                for v in key {
                    v.fold_key_bytes(&mut |bytes| fnv(&mut entry, bytes));
                    fnv(&mut entry, &[0xf9]);
                }
                value.fold_key_bytes(&mut |bytes| fnv(&mut entry, bytes));
                combined ^= entry;
            }
            h ^= combined;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Total number of attribute assignments across all attributes
    /// (a proxy for "rows" when reporting dataset sizes).
    pub fn total_attribute_assignments(&self) -> usize {
        self.attributes.values().map(HashMap::len).sum()
    }

    /// Build the full REVIEWDATA instance of the paper's Figure 2,
    /// including the (unobserved) quality attribute left unassigned.
    pub fn review_example() -> Self {
        let schema = RelationalSchema::review_example();
        let mut inst = Instance::new(schema);
        // Authors table.
        for (person, prestige, qual) in [("Bob", 1, 50.0), ("Carlos", 0, 20.0), ("Eva", 1, 2.0)] {
            inst.add_entity("Person", Value::from(person)).unwrap();
            inst.set_attribute("Prestige", &[Value::from(person)], Value::Int(prestige))
                .unwrap();
            inst.set_attribute("Qualification", &[Value::from(person)], Value::Float(qual))
                .unwrap();
        }
        // Submissions table.
        for (sub, score) in [("s1", 0.75), ("s2", 0.4), ("s3", 0.1)] {
            inst.add_entity("Submission", Value::from(sub)).unwrap();
            inst.set_attribute("Score", &[Value::from(sub)], Value::Float(score))
                .unwrap();
        }
        // Conferences table (Single = blind 0 / treated as not double blind).
        for (conf, double_blind) in [("ConfDB", false), ("ConfAI", true)] {
            inst.add_entity("Conference", Value::from(conf)).unwrap();
            inst.set_attribute("Blind", &[Value::from(conf)], Value::Bool(double_blind))
                .unwrap();
        }
        // Authorship table.
        for (a, s) in [
            ("Bob", "s1"),
            ("Eva", "s1"),
            ("Eva", "s2"),
            ("Eva", "s3"),
            ("Carlos", "s3"),
        ] {
            inst.add_relationship("Author", vec![Value::from(a), Value::from(s)])
                .unwrap();
        }
        // Submitted table.
        for (s, c) in [("s1", "ConfDB"), ("s2", "ConfAI"), ("s3", "ConfAI")] {
            inst.add_relationship("Submitted", vec![Value::from(s), Value::from(c)])
                .unwrap();
        }
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn review_example_instance_matches_figure_2() {
        let inst = Instance::review_example();
        assert!(inst.validate().is_ok());
        assert_eq!(inst.skeleton().entity_count("Person"), 3);
        assert_eq!(inst.skeleton().relationship_count("Author"), 5);
        assert_eq!(
            inst.attribute("Score", &[Value::from("s1")]),
            Some(&Value::Float(0.75))
        );
        assert_eq!(
            inst.attribute("Prestige", &[Value::from("Carlos")]),
            Some(&Value::Int(0))
        );
        // Quality is unobserved: no assignments.
        assert_eq!(inst.attribute_count("Quality"), 0);
        assert_eq!(inst.attribute_count("Score"), 3);
    }

    #[test]
    fn set_attribute_validates_domain_and_arity() {
        let mut inst = Instance::review_example();
        // Prestige is boolean; 2 is not an admissible value.
        let err = inst
            .set_attribute("Prestige", &[Value::from("Bob")], Value::Int(2))
            .unwrap_err();
        assert!(matches!(err, RelError::DomainMismatch { .. }));
        let err = inst
            .set_attribute(
                "Score",
                &[Value::from("s1"), Value::from("x")],
                Value::Float(0.5),
            )
            .unwrap_err();
        assert!(matches!(err, RelError::ArityMismatch { .. }));
        let err = inst
            .set_attribute("DoesNotExist", &[Value::from("s1")], Value::Float(0.5))
            .unwrap_err();
        assert!(matches!(err, RelError::UnknownAttribute(_)));
    }

    #[test]
    fn add_relationship_rejects_dangling_and_wrong_kind() {
        let mut inst = Instance::new(RelationalSchema::review_example());
        inst.add_entity("Person", Value::from("Bob")).unwrap();
        let err = inst
            .add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")])
            .unwrap_err();
        assert!(matches!(err, RelError::DanglingReference { .. }));
        let err = inst.add_entity("Author", Value::from("Bob")).unwrap_err();
        assert!(matches!(err, RelError::UnknownPredicate(_)));
    }

    #[test]
    fn units_of_attribute_follow_subject() {
        let inst = Instance::review_example();
        assert_eq!(inst.units_of_attribute("Prestige").unwrap().len(), 3);
        assert_eq!(inst.units_of_attribute("Score").unwrap().len(), 3);
        assert_eq!(inst.units_of_attribute("Blind").unwrap().len(), 2);
    }

    #[test]
    fn attribute_f64_coerces() {
        let inst = Instance::review_example();
        assert_eq!(
            inst.attribute_f64("Prestige", &[Value::from("Bob")]),
            Some(1.0)
        );
        assert_eq!(inst.attribute_f64("Quality", &[Value::from("s1")]), None);
    }

    #[test]
    fn total_assignments_counts_all_attributes() {
        let inst = Instance::review_example();
        // 3 prestige + 3 qualification + 3 score + 2 blind = 11
        assert_eq!(inst.total_attribute_assignments(), 11);
    }

    #[test]
    fn apply_produces_new_epoch_without_touching_base() {
        let base = Instance::review_example();
        let base_fp = base.fingerprint();
        let next = base
            .apply(&[
                Mutation::InsertEntity {
                    entity: "Person".into(),
                    key: Value::from("Dana"),
                },
                Mutation::SetAttribute {
                    attr: "Prestige".into(),
                    key: vec![Value::from("Dana")],
                    value: Value::Int(1),
                },
                Mutation::InsertRelationship {
                    rel: "Author".into(),
                    tuple: vec![Value::from("Dana"), Value::from("s2")],
                },
                Mutation::DeleteRelationship {
                    rel: "Author".into(),
                    tuple: vec![Value::from("Eva"), Value::from("s3")],
                },
                Mutation::SetAttribute {
                    attr: "Score".into(),
                    key: vec![Value::from("s1")],
                    value: Value::Float(0.9),
                },
                Mutation::ClearAttribute {
                    attr: "Score".into(),
                    key: vec![Value::from("s3")],
                },
            ])
            .unwrap();
        // The base epoch is untouched.
        assert_eq!(base.fingerprint(), base_fp);
        assert_eq!(base.skeleton().relationship_count("Author"), 5);
        assert_eq!(
            base.attribute("Score", &[Value::from("s1")]),
            Some(&Value::Float(0.75))
        );
        // The new epoch reflects every mutation, in order.
        assert_ne!(next.fingerprint(), base_fp);
        assert!(next.validate().is_ok());
        assert_eq!(next.skeleton().entity_count("Person"), 4);
        assert_eq!(next.skeleton().relationship_count("Author"), 5);
        assert!(next
            .skeleton()
            .has_relationship("Author", &[Value::from("Dana"), Value::from("s2")]));
        assert!(!next
            .skeleton()
            .has_relationship("Author", &[Value::from("Eva"), Value::from("s3")]));
        assert_eq!(
            next.attribute("Score", &[Value::from("s1")]),
            Some(&Value::Float(0.9))
        );
        assert_eq!(next.attribute("Score", &[Value::from("s3")]), None);
        // Replaying the same batch on the same base is deterministic.
        let replay = base
            .apply(&[Mutation::SetAttribute {
                attr: "Score".into(),
                key: vec![Value::from("s2")],
                value: Value::Float(0.5),
            }])
            .unwrap();
        let replay2 = base
            .apply(&[Mutation::SetAttribute {
                attr: "Score".into(),
                key: vec![Value::from("s2")],
                value: Value::Float(0.5),
            }])
            .unwrap();
        assert_eq!(replay.fingerprint(), replay2.fingerprint());
    }

    #[test]
    fn apply_is_atomic_on_error() {
        let base = Instance::review_example();
        // Second mutation dangles (no entity "ghost") → whole batch rejected.
        let err = base
            .apply(&[
                Mutation::SetAttribute {
                    attr: "Score".into(),
                    key: vec![Value::from("s1")],
                    value: Value::Float(0.99),
                },
                Mutation::InsertRelationship {
                    rel: "Author".into(),
                    tuple: vec![Value::from("ghost"), Value::from("s1")],
                },
            ])
            .unwrap_err();
        assert!(matches!(err, RelError::DanglingReference { .. }));
        // Nothing leaked into the base.
        assert_eq!(
            base.attribute("Score", &[Value::from("s1")]),
            Some(&Value::Float(0.75))
        );
    }

    #[test]
    fn delete_and_clear_validate_predicates() {
        let mut inst = Instance::review_example();
        assert!(matches!(
            inst.delete_relationship("Nope", &[Value::from("x")]),
            Err(RelError::UnknownPredicate(_))
        ));
        assert!(matches!(
            inst.delete_relationship("Person", &[Value::from("Bob")]),
            Err(RelError::UnknownPredicate(_))
        ));
        assert!(matches!(
            inst.clear_attribute("Nope", &[Value::from("x")]),
            Err(RelError::UnknownAttribute(_))
        ));
        // Absent tuple / assignment → Ok(false).
        assert_eq!(
            inst.delete_relationship("Author", &[Value::from("Bob"), Value::from("s3")]),
            Ok(false)
        );
        assert_eq!(
            inst.clear_attribute("Quality", &[Value::from("s1")]),
            Ok(false)
        );
        // Present → Ok(true).
        assert_eq!(
            inst.delete_relationship("Author", &[Value::from("Bob"), Value::from("s1")]),
            Ok(true)
        );
        assert_eq!(
            inst.clear_attribute("Score", &[Value::from("s1")]),
            Ok(true)
        );
    }

    #[test]
    fn fingerprint_covers_skeleton_and_attribute_content() {
        let inst = Instance::review_example();
        let fp = inst.fingerprint();
        // Stable across clones (attribute maps iterate in arbitrary order;
        // the hash must not depend on it).
        assert_eq!(inst.clone().fingerprint(), fp);
        assert_eq!(Instance::review_example().fingerprint(), fp);
        // A skeleton change changes it.
        let mut grown = inst.clone();
        grown.add_entity("Person", Value::from("Dana")).unwrap();
        assert_ne!(grown.fingerprint(), fp);
        // An attribute-only change changes it too (same skeleton!): this is
        // what the grounding cache relies on, since derived aggregate
        // values read attribute assignments.
        let mut rescored = inst.clone();
        rescored
            .set_attribute("Score", &[Value::from("s1")], Value::Float(0.9))
            .unwrap();
        assert_eq!(
            rescored.skeleton().fingerprint(),
            inst.skeleton().fingerprint()
        );
        assert_ne!(rescored.fingerprint(), fp);
    }
}
