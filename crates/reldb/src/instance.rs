//! Observed relational instances: a skeleton plus attribute assignments
//! (Section 3.1).

use crate::error::{RelError, RelResult};
use crate::schema::{PredicateKind, RelationalSchema};
use crate::skeleton::{Skeleton, UnitKey};
use crate::value::{fnv1a, Value, ValueKey, FNV_OFFSET};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A single edit to an [`Instance`], applied in batches by
/// [`Instance::apply`] to produce a new immutable epoch.
///
/// Mutations are plain data so a recorded history of committed batches can
/// be replayed deterministically by a checker: applying the same batches to
/// the same base instance reproduces the same epoch instances (and hence
/// the same [`Instance::fingerprint`] per epoch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mutation {
    /// Add a grounded entity (idempotent, like [`Instance::add_entity`]).
    InsertEntity {
        /// Entity class name.
        entity: String,
        /// Key of the new entity.
        key: Value,
    },
    /// Add a relationship tuple (idempotent; arity and referential
    /// integrity checked, like [`Instance::add_relationship`]).
    InsertRelationship {
        /// Relationship name.
        rel: String,
        /// The tuple to insert.
        tuple: UnitKey,
    },
    /// Remove a relationship tuple (no-op if absent).
    DeleteRelationship {
        /// Relationship name.
        rel: String,
        /// The tuple to remove.
        tuple: UnitKey,
    },
    /// Assign (insert or overwrite) an attribute value, with domain and
    /// arity checks, like [`Instance::set_attribute`].
    SetAttribute {
        /// Attribute name.
        attr: String,
        /// Unit key the value attaches to.
        key: UnitKey,
        /// The value to assign.
        value: Value,
    },
    /// Remove an attribute assignment (no-op if unassigned).
    ClearAttribute {
        /// Attribute name.
        attr: String,
        /// Unit key whose assignment is removed.
        key: UnitKey,
    },
}

/// One *effective* change produced by applying a [`Mutation`] batch.
///
/// Deltas describe what actually changed between two epochs, not what was
/// requested: an idempotent re-insert, a delete of an absent tuple, or a
/// `SetAttribute` overwriting a cell with a bit-identical value emits no
/// delta at all. This is the contract incremental view maintenance relies
/// on — an empty [`DeltaSet`] guarantees the two epochs have identical
/// content (and hence identical [`Instance::fingerprint`]s).
///
/// Cell comparisons are *strict* (variant- and bit-exact, like
/// [`crate::ValueKey`] and the fingerprint), not coercing like `Value`
/// equality: overwriting `Int(2)` with `Float(2.0)` changes the stored
/// bytes and therefore *is* a delta, even though the two values compare
/// equal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// A previously absent entity key was added to the skeleton.
    EntityAdded {
        /// Entity class name.
        entity: String,
        /// Key of the added entity.
        key: Value,
    },
    /// A previously absent relationship tuple was added to the skeleton.
    RelationshipAdded {
        /// Relationship name.
        rel: String,
        /// The added tuple.
        tuple: UnitKey,
    },
    /// A previously present relationship tuple was removed.
    RelationshipRemoved {
        /// Relationship name.
        rel: String,
        /// The removed tuple.
        tuple: UnitKey,
    },
    /// An attribute cell changed value (or was assigned for the first
    /// time, in which case `old` is `None`).
    CellSet {
        /// Attribute name.
        attr: String,
        /// Unit key of the changed cell.
        key: UnitKey,
        /// The previous value, if the cell was assigned.
        old: Option<Value>,
        /// The new value.
        new: Value,
    },
    /// A previously assigned attribute cell was cleared.
    CellCleared {
        /// Attribute name.
        attr: String,
        /// Unit key of the cleared cell.
        key: UnitKey,
        /// The value that was removed.
        old: Value,
    },
}

impl DeltaOp {
    /// Whether this op changes the relational skeleton (entity set or
    /// relationship tuples) rather than just attribute cells.
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            DeltaOp::EntityAdded { .. }
                | DeltaOp::RelationshipAdded { .. }
                | DeltaOp::RelationshipRemoved { .. }
        )
    }
}

/// The ordered stream of effective changes from one [`Instance::apply`]
/// batch, produced by [`Instance::apply_with_delta`].
///
/// Ops appear in application order. Because only *effective* changes are
/// recorded, the set is empty exactly when the batch was a no-op, and a
/// later op on the same cell reflects the state left by earlier ops in the
/// same batch (e.g. set-then-clear of a previously absent cell emits
/// `CellSet { old: None, .. }` followed by `CellCleared`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeltaSet {
    ops: Vec<DeltaOp>,
}

impl DeltaSet {
    /// The recorded ops, in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of effective changes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch changed nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether any op touches the skeleton. Structural deltas invalidate
    /// node tables and join results; attribute-only deltas can be patched
    /// into grounded state in place.
    pub fn is_structural(&self) -> bool {
        self.ops.iter().any(DeltaOp::is_structural)
    }

    /// The set of attribute names with at least one changed cell.
    pub fn touched_attrs(&self) -> BTreeSet<&str> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                DeltaOp::CellSet { attr, .. } | DeltaOp::CellCleared { attr, .. } => {
                    Some(attr.as_str())
                }
                _ => None,
            })
            .collect()
    }

    /// Deduplicated `(attr, key)` pairs of every changed attribute cell,
    /// in first-touched order. For patching, only *which* cells changed
    /// matters — the new value is read back from the new epoch.
    pub fn changed_cells(&self) -> Vec<(&str, &UnitKey)> {
        let mut seen: BTreeSet<(&str, Vec<String>)> = BTreeSet::new();
        let mut cells = Vec::new();
        for op in &self.ops {
            if let DeltaOp::CellSet { attr, key, .. } | DeltaOp::CellCleared { attr, key, .. } = op
            {
                let repr: Vec<String> = key.iter().map(Value::key_repr).collect();
                if seen.insert((attr.as_str(), repr)) {
                    cells.push((attr.as_str(), key));
                }
            }
        }
        cells
    }

    fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }
}

/// An observed relational instance conforming to a [`RelationalSchema`].
///
/// The instance owns its schema, its relational skeleton, and one map per
/// attribute function from unit keys to values. Unobserved attribute
/// functions (e.g. `Quality[S]` in the running example) simply have no
/// stored assignments.
///
/// The skeleton and each per-attribute map live behind [`Arc`]s with
/// copy-on-write mutation ([`Arc::make_mut`]): cloning an instance — the
/// first step of every [`Instance::apply`], i.e. of every committed epoch —
/// is O(#attributes) pointer bumps, and a mutation batch deep-copies only
/// the maps it actually writes. An attribute-only commit therefore never
/// re-copies the skeleton (or the untouched attributes), which is what
/// keeps epoch creation proportional to the delta rather than the world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    schema: RelationalSchema,
    skeleton: Arc<Skeleton>,
    /// attribute name → (unit key → value)
    attributes: BTreeMap<String, Arc<HashMap<UnitKey, Value>>>,
}

impl Instance {
    /// Create an empty instance over `schema`.
    pub fn new(schema: RelationalSchema) -> Self {
        Self {
            schema,
            skeleton: Arc::new(Skeleton::new()),
            attributes: BTreeMap::new(),
        }
    }

    /// The schema this instance conforms to.
    pub fn schema(&self) -> &RelationalSchema {
        &self.schema
    }

    /// The relational skeleton Δ of this instance.
    pub fn skeleton(&self) -> &Skeleton {
        &self.skeleton
    }

    /// A shared handle to the skeleton, for groundings that outlive the
    /// borrow of `self` (e.g. streamed models resolving interned node
    /// identities after grounding).
    pub fn skeleton_shared(&self) -> Arc<Skeleton> {
        Arc::clone(&self.skeleton)
    }

    /// Add a grounded entity.
    pub fn add_entity(&mut self, entity: &str, key: Value) -> RelResult<()> {
        match self.schema.require_predicate(entity)? {
            PredicateKind::Entity => {
                Arc::make_mut(&mut self.skeleton).add_entity(entity, key);
                Ok(())
            }
            PredicateKind::Relationship => Err(RelError::UnknownPredicate(format!(
                "`{entity}` is a relationship, not an entity"
            ))),
        }
    }

    /// Add a grounded relationship tuple, checking arity and that the
    /// referenced entities exist.
    pub fn add_relationship(&mut self, rel: &str, tuple: UnitKey) -> RelResult<()> {
        let positions = self
            .schema
            .predicate_positions(rel)
            .ok_or_else(|| RelError::UnknownPredicate(rel.to_string()))?;
        if self.schema.predicate_kind(rel) != Some(PredicateKind::Relationship) {
            return Err(RelError::UnknownPredicate(format!(
                "`{rel}` is an entity, not a relationship"
            )));
        }
        if tuple.len() != positions.len() {
            return Err(RelError::ArityMismatch {
                predicate: rel.to_string(),
                expected: positions.len(),
                actual: tuple.len(),
            });
        }
        for (entity, key) in positions.iter().zip(tuple.iter()) {
            if !self.skeleton.has_entity(entity, key) {
                return Err(RelError::DanglingReference {
                    rel: rel.to_string(),
                    entity: entity.clone(),
                    key: key.to_string(),
                });
            }
        }
        Arc::make_mut(&mut self.skeleton).add_relationship(rel, tuple);
        Ok(())
    }

    /// Assign `value` to attribute `attr` of the unit identified by `key`.
    /// Returns the previous value of the cell, if it was assigned — delta
    /// emission uses this to distinguish effective changes from rewrites
    /// of the same bits.
    pub fn set_attribute(
        &mut self,
        attr: &str,
        key: &[Value],
        value: Value,
    ) -> RelResult<Option<Value>> {
        let def = self.schema.require_attribute(attr)?.clone();
        let arity = self
            .schema
            .predicate_arity(&def.subject)
            .expect("attribute subject must be a declared predicate");
        if key.len() != arity {
            return Err(RelError::ArityMismatch {
                predicate: def.subject.clone(),
                expected: arity,
                actual: key.len(),
            });
        }
        if !def.domain.admits(&value) {
            return Err(RelError::DomainMismatch {
                attribute: attr.to_string(),
                domain: def.domain.to_string(),
                value: value.to_string(),
            });
        }
        Ok(
            Arc::make_mut(self.attributes.entry(attr.to_string()).or_default())
                .insert(key.to_vec(), value),
        )
    }

    /// Remove a relationship tuple. Returns `Ok(true)` if the tuple was
    /// present, `Ok(false)` if absent; errors only on an unknown or
    /// non-relationship predicate.
    pub fn delete_relationship(&mut self, rel: &str, tuple: &[Value]) -> RelResult<bool> {
        if self.schema.predicate_positions(rel).is_none() {
            return Err(RelError::UnknownPredicate(rel.to_string()));
        }
        if self.schema.predicate_kind(rel) != Some(PredicateKind::Relationship) {
            return Err(RelError::UnknownPredicate(format!(
                "`{rel}` is an entity, not a relationship"
            )));
        }
        // Probe before `make_mut`: a retraction of an absent tuple must
        // stay a no-op, not force a deep copy of a shared skeleton.
        if !self.skeleton.has_relationship(rel, tuple) {
            return Ok(false);
        }
        Ok(Arc::make_mut(&mut self.skeleton).remove_relationship(rel, tuple))
    }

    /// Remove the assignment of attribute `attr` for unit `key`. Returns
    /// the removed value if an assignment was present, `Ok(None)` if the
    /// cell was never assigned; errors on an unknown attribute.
    pub fn clear_attribute(&mut self, attr: &str, key: &[Value]) -> RelResult<Option<Value>> {
        self.schema.require_attribute(attr)?;
        // Probe before `make_mut`: clearing an unassigned cell must stay a
        // no-op, not force a deep copy of a shared attribute map.
        Ok(self
            .attributes
            .get_mut(attr)
            .filter(|m| m.contains_key(key))
            .and_then(|m| Arc::make_mut(m).remove(key)))
    }

    /// Apply a batch of [`Mutation`]s to a copy of this instance, returning
    /// the mutated copy as a new immutable epoch. `self` is untouched —
    /// readers holding it keep a consistent snapshot while the returned
    /// instance becomes the next epoch.
    ///
    /// The batch is atomic: the first failing mutation aborts the whole
    /// application and no partial epoch is produced. Application order is
    /// the slice order, so replaying recorded batches is deterministic.
    pub fn apply(&self, mutations: &[Mutation]) -> RelResult<Instance> {
        self.apply_with_delta(mutations).map(|(next, _)| next)
    }

    /// Like [`Instance::apply`], but also returns the [`DeltaSet`] of
    /// *effective* changes: ops appear in application order and only when
    /// they changed stored content. Idempotent inserts, deletes/clears of
    /// absent tuples/cells, and attribute writes of bit-identical values
    /// emit nothing — so `delta.is_empty()` implies the returned epoch has
    /// the same fingerprint as `self`, and downstream incremental view
    /// maintenance never sees phantom additions or retractions.
    ///
    /// The batch is atomic exactly like `apply`: on the first failing
    /// mutation, no epoch and no delta are produced.
    pub fn apply_with_delta(&self, mutations: &[Mutation]) -> RelResult<(Instance, DeltaSet)> {
        let mut next = self.clone();
        let mut delta = DeltaSet::default();
        for m in mutations {
            match m {
                Mutation::InsertEntity { entity, key } => {
                    let present = next.skeleton.has_entity(entity, key);
                    next.add_entity(entity, key.clone())?;
                    if !present {
                        delta.push(DeltaOp::EntityAdded {
                            entity: entity.clone(),
                            key: key.clone(),
                        });
                    }
                }
                Mutation::InsertRelationship { rel, tuple } => {
                    let present = next.skeleton.has_relationship(rel, tuple);
                    next.add_relationship(rel, tuple.clone())?;
                    if !present {
                        delta.push(DeltaOp::RelationshipAdded {
                            rel: rel.clone(),
                            tuple: tuple.clone(),
                        });
                    }
                }
                Mutation::DeleteRelationship { rel, tuple } => {
                    if next.delete_relationship(rel, tuple)? {
                        delta.push(DeltaOp::RelationshipRemoved {
                            rel: rel.clone(),
                            tuple: tuple.clone(),
                        });
                    }
                }
                Mutation::SetAttribute { attr, key, value } => {
                    let old = next.set_attribute(attr, key, value.clone())?;
                    // Strict comparison: Int(2) → Float(2.0) changes the
                    // stored bytes (and the fingerprint) even though the
                    // values compare equal under coercion.
                    let changed = !old.as_ref().is_some_and(|o| ValueKey(o) == ValueKey(value));
                    if changed {
                        delta.push(DeltaOp::CellSet {
                            attr: attr.clone(),
                            key: key.clone(),
                            old,
                            new: value.clone(),
                        });
                    }
                }
                Mutation::ClearAttribute { attr, key } => {
                    if let Some(old) = next.clear_attribute(attr, key)? {
                        delta.push(DeltaOp::CellCleared {
                            attr: attr.clone(),
                            key: key.clone(),
                            old,
                        });
                    }
                }
            }
        }
        Ok((next, delta))
    }

    /// Read the value of attribute `attr` for unit `key`, if assigned.
    pub fn attribute(&self, attr: &str, key: &[Value]) -> Option<&Value> {
        self.attributes.get(attr)?.get(key)
    }

    /// Read the value of `attr` for `key` as an `f64`, treating missing or
    /// non-numeric values as `None`.
    pub fn attribute_f64(&self, attr: &str, key: &[Value]) -> Option<f64> {
        self.attribute(attr, key).and_then(Value::as_f64)
    }

    /// Number of stored assignments for attribute `attr`.
    pub fn attribute_count(&self, attr: &str) -> usize {
        self.attributes.get(attr).map_or(0, |m| m.len())
    }

    /// Iterate over all assignments of attribute `attr`.
    pub fn attribute_assignments(&self, attr: &str) -> impl Iterator<Item = (&UnitKey, &Value)> {
        self.attributes.get(attr).into_iter().flat_map(|m| m.iter())
    }

    /// All units of the predicate that attribute `attr` attaches to.
    pub fn units_of_attribute(&self, attr: &str) -> RelResult<Vec<UnitKey>> {
        let def = self.schema.require_attribute(attr)?;
        self.skeleton.units_of(&self.schema, &def.subject)
    }

    /// Validate skeleton referential integrity.
    pub fn validate(&self) -> RelResult<()> {
        self.skeleton.validate(&self.schema)
    }

    /// A stable 64-bit fingerprint of the full instance content: the
    /// skeleton ([`Skeleton::fingerprint`]) combined with every attribute
    /// assignment. Grounding consumes both (derived aggregate values read
    /// attribute assignments), so this — not the skeleton fingerprint
    /// alone — is the correct grounding-cache key: any content change,
    /// structural or attributive, changes the fingerprint.
    ///
    /// Attribute assignments live in hash maps with nondeterministic
    /// iteration order, so their contribution is combined with an
    /// order-independent XOR of per-entry hashes.
    pub fn fingerprint(&self) -> u64 {
        let fnv = fnv1a;
        let mut h = self.skeleton.fingerprint();
        for (attr, assignments) in &self.attributes {
            fnv(&mut h, attr.as_bytes());
            fnv(&mut h, &[0xfa]);
            let mut combined: u64 = 0;
            for (key, value) in assignments.iter() {
                let mut entry = FNV_OFFSET;
                for v in key {
                    v.fold_key_bytes(&mut |bytes| fnv(&mut entry, bytes));
                    fnv(&mut entry, &[0xf9]);
                }
                value.fold_key_bytes(&mut |bytes| fnv(&mut entry, bytes));
                combined ^= entry;
            }
            h ^= combined;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Total number of attribute assignments across all attributes
    /// (a proxy for "rows" when reporting dataset sizes).
    pub fn total_attribute_assignments(&self) -> usize {
        self.attributes.values().map(|m| m.len()).sum()
    }

    /// Build the full REVIEWDATA instance of the paper's Figure 2,
    /// including the (unobserved) quality attribute left unassigned.
    pub fn review_example() -> Self {
        let schema = RelationalSchema::review_example();
        let mut inst = Instance::new(schema);
        // Authors table.
        for (person, prestige, qual) in [("Bob", 1, 50.0), ("Carlos", 0, 20.0), ("Eva", 1, 2.0)] {
            inst.add_entity("Person", Value::from(person)).unwrap();
            inst.set_attribute("Prestige", &[Value::from(person)], Value::Int(prestige))
                .unwrap();
            inst.set_attribute("Qualification", &[Value::from(person)], Value::Float(qual))
                .unwrap();
        }
        // Submissions table.
        for (sub, score) in [("s1", 0.75), ("s2", 0.4), ("s3", 0.1)] {
            inst.add_entity("Submission", Value::from(sub)).unwrap();
            inst.set_attribute("Score", &[Value::from(sub)], Value::Float(score))
                .unwrap();
        }
        // Conferences table (Single = blind 0 / treated as not double blind).
        for (conf, double_blind) in [("ConfDB", false), ("ConfAI", true)] {
            inst.add_entity("Conference", Value::from(conf)).unwrap();
            inst.set_attribute("Blind", &[Value::from(conf)], Value::Bool(double_blind))
                .unwrap();
        }
        // Authorship table.
        for (a, s) in [
            ("Bob", "s1"),
            ("Eva", "s1"),
            ("Eva", "s2"),
            ("Eva", "s3"),
            ("Carlos", "s3"),
        ] {
            inst.add_relationship("Author", vec![Value::from(a), Value::from(s)])
                .unwrap();
        }
        // Submitted table.
        for (s, c) in [("s1", "ConfDB"), ("s2", "ConfAI"), ("s3", "ConfAI")] {
            inst.add_relationship("Submitted", vec![Value::from(s), Value::from(c)])
                .unwrap();
        }
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn review_example_instance_matches_figure_2() {
        let inst = Instance::review_example();
        assert!(inst.validate().is_ok());
        assert_eq!(inst.skeleton().entity_count("Person"), 3);
        assert_eq!(inst.skeleton().relationship_count("Author"), 5);
        assert_eq!(
            inst.attribute("Score", &[Value::from("s1")]),
            Some(&Value::Float(0.75))
        );
        assert_eq!(
            inst.attribute("Prestige", &[Value::from("Carlos")]),
            Some(&Value::Int(0))
        );
        // Quality is unobserved: no assignments.
        assert_eq!(inst.attribute_count("Quality"), 0);
        assert_eq!(inst.attribute_count("Score"), 3);
    }

    #[test]
    fn set_attribute_validates_domain_and_arity() {
        let mut inst = Instance::review_example();
        // Prestige is boolean; 2 is not an admissible value.
        let err = inst
            .set_attribute("Prestige", &[Value::from("Bob")], Value::Int(2))
            .unwrap_err();
        assert!(matches!(err, RelError::DomainMismatch { .. }));
        let err = inst
            .set_attribute(
                "Score",
                &[Value::from("s1"), Value::from("x")],
                Value::Float(0.5),
            )
            .unwrap_err();
        assert!(matches!(err, RelError::ArityMismatch { .. }));
        let err = inst
            .set_attribute("DoesNotExist", &[Value::from("s1")], Value::Float(0.5))
            .unwrap_err();
        assert!(matches!(err, RelError::UnknownAttribute(_)));
    }

    #[test]
    fn add_relationship_rejects_dangling_and_wrong_kind() {
        let mut inst = Instance::new(RelationalSchema::review_example());
        inst.add_entity("Person", Value::from("Bob")).unwrap();
        let err = inst
            .add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")])
            .unwrap_err();
        assert!(matches!(err, RelError::DanglingReference { .. }));
        let err = inst.add_entity("Author", Value::from("Bob")).unwrap_err();
        assert!(matches!(err, RelError::UnknownPredicate(_)));
    }

    #[test]
    fn units_of_attribute_follow_subject() {
        let inst = Instance::review_example();
        assert_eq!(inst.units_of_attribute("Prestige").unwrap().len(), 3);
        assert_eq!(inst.units_of_attribute("Score").unwrap().len(), 3);
        assert_eq!(inst.units_of_attribute("Blind").unwrap().len(), 2);
    }

    #[test]
    fn attribute_f64_coerces() {
        let inst = Instance::review_example();
        assert_eq!(
            inst.attribute_f64("Prestige", &[Value::from("Bob")]),
            Some(1.0)
        );
        assert_eq!(inst.attribute_f64("Quality", &[Value::from("s1")]), None);
    }

    #[test]
    fn total_assignments_counts_all_attributes() {
        let inst = Instance::review_example();
        // 3 prestige + 3 qualification + 3 score + 2 blind = 11
        assert_eq!(inst.total_attribute_assignments(), 11);
    }

    #[test]
    fn apply_produces_new_epoch_without_touching_base() {
        let base = Instance::review_example();
        let base_fp = base.fingerprint();
        let next = base
            .apply(&[
                Mutation::InsertEntity {
                    entity: "Person".into(),
                    key: Value::from("Dana"),
                },
                Mutation::SetAttribute {
                    attr: "Prestige".into(),
                    key: vec![Value::from("Dana")],
                    value: Value::Int(1),
                },
                Mutation::InsertRelationship {
                    rel: "Author".into(),
                    tuple: vec![Value::from("Dana"), Value::from("s2")],
                },
                Mutation::DeleteRelationship {
                    rel: "Author".into(),
                    tuple: vec![Value::from("Eva"), Value::from("s3")],
                },
                Mutation::SetAttribute {
                    attr: "Score".into(),
                    key: vec![Value::from("s1")],
                    value: Value::Float(0.9),
                },
                Mutation::ClearAttribute {
                    attr: "Score".into(),
                    key: vec![Value::from("s3")],
                },
            ])
            .unwrap();
        // The base epoch is untouched.
        assert_eq!(base.fingerprint(), base_fp);
        assert_eq!(base.skeleton().relationship_count("Author"), 5);
        assert_eq!(
            base.attribute("Score", &[Value::from("s1")]),
            Some(&Value::Float(0.75))
        );
        // The new epoch reflects every mutation, in order.
        assert_ne!(next.fingerprint(), base_fp);
        assert!(next.validate().is_ok());
        assert_eq!(next.skeleton().entity_count("Person"), 4);
        assert_eq!(next.skeleton().relationship_count("Author"), 5);
        assert!(next
            .skeleton()
            .has_relationship("Author", &[Value::from("Dana"), Value::from("s2")]));
        assert!(!next
            .skeleton()
            .has_relationship("Author", &[Value::from("Eva"), Value::from("s3")]));
        assert_eq!(
            next.attribute("Score", &[Value::from("s1")]),
            Some(&Value::Float(0.9))
        );
        assert_eq!(next.attribute("Score", &[Value::from("s3")]), None);
        // Replaying the same batch on the same base is deterministic.
        let replay = base
            .apply(&[Mutation::SetAttribute {
                attr: "Score".into(),
                key: vec![Value::from("s2")],
                value: Value::Float(0.5),
            }])
            .unwrap();
        let replay2 = base
            .apply(&[Mutation::SetAttribute {
                attr: "Score".into(),
                key: vec![Value::from("s2")],
                value: Value::Float(0.5),
            }])
            .unwrap();
        assert_eq!(replay.fingerprint(), replay2.fingerprint());
    }

    #[test]
    fn apply_is_atomic_on_error() {
        let base = Instance::review_example();
        // Second mutation dangles (no entity "ghost") → whole batch rejected.
        let err = base
            .apply(&[
                Mutation::SetAttribute {
                    attr: "Score".into(),
                    key: vec![Value::from("s1")],
                    value: Value::Float(0.99),
                },
                Mutation::InsertRelationship {
                    rel: "Author".into(),
                    tuple: vec![Value::from("ghost"), Value::from("s1")],
                },
            ])
            .unwrap_err();
        assert!(matches!(err, RelError::DanglingReference { .. }));
        // Nothing leaked into the base.
        assert_eq!(
            base.attribute("Score", &[Value::from("s1")]),
            Some(&Value::Float(0.75))
        );
    }

    #[test]
    fn delete_and_clear_validate_predicates() {
        let mut inst = Instance::review_example();
        assert!(matches!(
            inst.delete_relationship("Nope", &[Value::from("x")]),
            Err(RelError::UnknownPredicate(_))
        ));
        assert!(matches!(
            inst.delete_relationship("Person", &[Value::from("Bob")]),
            Err(RelError::UnknownPredicate(_))
        ));
        assert!(matches!(
            inst.clear_attribute("Nope", &[Value::from("x")]),
            Err(RelError::UnknownAttribute(_))
        ));
        // Absent tuple / assignment → no-op results.
        assert_eq!(
            inst.delete_relationship("Author", &[Value::from("Bob"), Value::from("s3")]),
            Ok(false)
        );
        assert_eq!(
            inst.clear_attribute("Quality", &[Value::from("s1")]),
            Ok(None)
        );
        // Present → removed (clear reports the removed value).
        assert_eq!(
            inst.delete_relationship("Author", &[Value::from("Bob"), Value::from("s1")]),
            Ok(true)
        );
        assert_eq!(
            inst.clear_attribute("Score", &[Value::from("s1")]),
            Ok(Some(Value::Float(0.75)))
        );
    }

    #[test]
    fn epoch_clones_share_storage_copy_on_write() {
        let base = Instance::review_example();
        let next = base
            .apply(&[Mutation::SetAttribute {
                attr: "Score".into(),
                key: vec![Value::from("s1")],
                value: Value::Float(0.9),
            }])
            .expect("attribute batch applies");
        // An attribute-only epoch shares the skeleton and every untouched
        // attribute map with its base; only the written map is re-allocated.
        assert!(Arc::ptr_eq(&base.skeleton, &next.skeleton));
        assert!(Arc::ptr_eq(
            &base.attributes["Prestige"],
            &next.attributes["Prestige"]
        ));
        assert!(!Arc::ptr_eq(
            &base.attributes["Score"],
            &next.attributes["Score"]
        ));
        // Copy-on-write isolation: the base still reads the old value.
        assert_eq!(
            base.attribute("Score", &[Value::from("s1")]),
            Some(&Value::Float(0.75))
        );
        assert_eq!(
            next.attribute("Score", &[Value::from("s1")]),
            Some(&Value::Float(0.9))
        );
        // No-op retractions (absent tuple, unassigned cell) deep-copy
        // nothing: the probe-before-`make_mut` guards keep sharing intact.
        let noop = next
            .apply(&[
                Mutation::DeleteRelationship {
                    rel: "Author".into(),
                    tuple: vec![Value::from("Bob"), Value::from("s2")],
                },
                Mutation::ClearAttribute {
                    attr: "Quality".into(),
                    key: vec![Value::from("s1")],
                },
            ])
            .expect("no-op batch applies");
        assert!(Arc::ptr_eq(&next.skeleton, &noop.skeleton));
        assert!(Arc::ptr_eq(
            &next.attributes["Score"],
            &noop.attributes["Score"]
        ));
        assert_eq!(base.fingerprint(), {
            let mut b = base.clone();
            b.set_attribute("Prestige", &[Value::from("Bob")], Value::Int(1))
                .expect("rewrite of identical value");
            b.fingerprint()
        });
    }

    #[test]
    fn apply_with_delta_records_only_effective_changes() {
        let base = Instance::review_example();
        let (next, delta) = base
            .apply_with_delta(&[
                // Idempotent re-insert of an existing entity: no delta.
                Mutation::InsertEntity {
                    entity: "Person".into(),
                    key: Value::from("Bob"),
                },
                // Fresh entity: delta.
                Mutation::InsertEntity {
                    entity: "Person".into(),
                    key: Value::from("Dana"),
                },
                // Re-insert of an existing relationship tuple: no delta.
                Mutation::InsertRelationship {
                    rel: "Author".into(),
                    tuple: vec![Value::from("Bob"), Value::from("s1")],
                },
                // Delete of an absent tuple: no phantom retraction.
                Mutation::DeleteRelationship {
                    rel: "Author".into(),
                    tuple: vec![Value::from("Carlos"), Value::from("s1")],
                },
                // Overwrite with bit-identical value: no delta.
                Mutation::SetAttribute {
                    attr: "Score".into(),
                    key: vec![Value::from("s1")],
                    value: Value::Float(0.75),
                },
                // Effective overwrite: delta with the old value.
                Mutation::SetAttribute {
                    attr: "Score".into(),
                    key: vec![Value::from("s2")],
                    value: Value::Float(0.9),
                },
                // Clear of a never-assigned cell: no phantom retraction.
                Mutation::ClearAttribute {
                    attr: "Quality".into(),
                    key: vec![Value::from("s1")],
                },
                // Effective clear.
                Mutation::ClearAttribute {
                    attr: "Score".into(),
                    key: vec![Value::from("s3")],
                },
            ])
            .unwrap();
        assert_eq!(
            delta.ops(),
            &[
                DeltaOp::EntityAdded {
                    entity: "Person".into(),
                    key: Value::from("Dana"),
                },
                DeltaOp::CellSet {
                    attr: "Score".into(),
                    key: vec![Value::from("s2")],
                    old: Some(Value::Float(0.4)),
                    new: Value::Float(0.9),
                },
                DeltaOp::CellCleared {
                    attr: "Score".into(),
                    key: vec![Value::from("s3")],
                    old: Value::Float(0.1),
                },
            ]
        );
        assert!(delta.is_structural());
        assert_eq!(
            delta.touched_attrs().into_iter().collect::<Vec<_>>(),
            ["Score"]
        );
        assert_eq!(delta.changed_cells().len(), 2);
        assert_eq!(next.skeleton().entity_count("Person"), 4);
    }

    #[test]
    fn empty_delta_means_identical_fingerprint() {
        let base = Instance::review_example();
        let (next, delta) = base
            .apply_with_delta(&[
                Mutation::InsertEntity {
                    entity: "Person".into(),
                    key: Value::from("Bob"),
                },
                Mutation::SetAttribute {
                    attr: "Score".into(),
                    key: vec![Value::from("s1")],
                    value: Value::Float(0.75),
                },
                Mutation::ClearAttribute {
                    attr: "Quality".into(),
                    key: vec![Value::from("s1")],
                },
            ])
            .unwrap();
        assert!(delta.is_empty());
        assert!(!delta.is_structural());
        assert_eq!(next.fingerprint(), base.fingerprint());
    }

    #[test]
    fn strict_cell_comparison_sees_int_to_float_rewrites() {
        let base = Instance::review_example();
        // Qualification holds floats; overwrite Prestige (Bool domain admits
        // ints 0/1) — Int(1) → Float(1.0)? Bool domain rejects floats, so use
        // Qualification: Float(50.0) → Int(50) is an effective change even
        // though Value::eq coerces them equal.
        let (_, delta) = base
            .apply_with_delta(&[Mutation::SetAttribute {
                attr: "Qualification".into(),
                key: vec![Value::from("Bob")],
                value: Value::Int(50),
            }])
            .unwrap();
        assert_eq!(delta.len(), 1);
        assert!(matches!(
            &delta.ops()[0],
            DeltaOp::CellSet { old: Some(Value::Float(f)), new: Value::Int(50), .. } if *f == 50.0
        ));
    }

    #[test]
    fn fingerprint_covers_skeleton_and_attribute_content() {
        let inst = Instance::review_example();
        let fp = inst.fingerprint();
        // Stable across clones (attribute maps iterate in arbitrary order;
        // the hash must not depend on it).
        assert_eq!(inst.clone().fingerprint(), fp);
        assert_eq!(Instance::review_example().fingerprint(), fp);
        // A skeleton change changes it.
        let mut grown = inst.clone();
        grown.add_entity("Person", Value::from("Dana")).unwrap();
        assert_ne!(grown.fingerprint(), fp);
        // An attribute-only change changes it too (same skeleton!): this is
        // what the grounding cache relies on, since derived aggregate
        // values read attribute assignments.
        let mut rescored = inst.clone();
        rescored
            .set_attribute("Score", &[Value::from("s1")], Value::Float(0.9))
            .unwrap();
        assert_eq!(
            rescored.skeleton().fingerprint(),
            inst.skeleton().fingerprint()
        );
        assert_ne!(rescored.fingerprint(), fp);
    }
}
