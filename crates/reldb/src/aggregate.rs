//! Aggregate functions and group-by evaluation.
//!
//! Aggregated attribute functions (Section 3.2.4) and the embedding
//! functions of Section 5.2.2 both reduce a *set* of values to a small fixed
//! summary. This module provides the numeric aggregate kernel shared by
//! both.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A numeric aggregate function over a multiset of values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFn {
    /// Number of (non-missing) values.
    Count,
    /// Sum of values.
    Sum,
    /// Arithmetic mean. Empty input yields `None`.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Population variance (denominator `n`). Empty input yields `None`.
    Var,
    /// Median (lower median for even-length inputs interpolated).
    Median,
}

impl AggFn {
    /// Apply the aggregate to a slice of numeric values.
    ///
    /// `NaN` values are treated as *missing* and ignored: they arise from
    /// unobserved attributes rendered numerically (e.g. empty peer sets
    /// summarised elsewhere), and letting them participate would silently
    /// poison every downstream average. A group that is empty — or
    /// effectively empty because every value is missing — returns `None`
    /// for all aggregates except `Count` and `Sum`, which return 0.
    pub fn apply(&self, values: &[f64]) -> Option<f64> {
        let values: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        match self {
            AggFn::Count => Some(values.len() as f64),
            AggFn::Sum => Some(values.iter().sum()),
            AggFn::Avg => {
                if values.is_empty() {
                    None
                } else {
                    Some(values.iter().sum::<f64>() / values.len() as f64)
                }
            }
            AggFn::Min => values.iter().copied().fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            }),
            AggFn::Max => values.iter().copied().fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            }),
            AggFn::Var => {
                if values.is_empty() {
                    return None;
                }
                let n = values.len() as f64;
                let mean = values.iter().sum::<f64>() / n;
                Some(values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n)
            }
            AggFn::Median => median(&values),
        }
    }

    /// Parse an aggregate name as written in CaRL programs (`AVG`, `COUNT`,
    /// `SUM`, `MIN`, `MAX`, `VAR`, `MEDIAN`), case-insensitively.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFn::Count),
            "SUM" => Some(AggFn::Sum),
            "AVG" | "MEAN" => Some(AggFn::Avg),
            "MIN" => Some(AggFn::Min),
            "MAX" => Some(AggFn::Max),
            "VAR" | "VARIANCE" => Some(AggFn::Var),
            "MEDIAN" => Some(AggFn::Median),
            _ => None,
        }
    }

    /// The canonical upper-case name used in CaRL surface syntax.
    pub fn name(&self) -> &'static str {
        match self {
            AggFn::Count => "COUNT",
            AggFn::Sum => "SUM",
            AggFn::Avg => "AVG",
            AggFn::Min => "MIN",
            AggFn::Max => "MAX",
            AggFn::Var => "VAR",
            AggFn::Median => "MEDIAN",
        }
    }
}

impl std::fmt::Display for AggFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Median with linear interpolation for even-length inputs. `NaN` values
/// are treated as missing; an input with no observed values yields `None`.
pub fn median(values: &[f64]) -> Option<f64> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    if n % 2 == 1 {
        Some(sorted[n / 2])
    } else {
        Some((sorted[n / 2 - 1] + sorted[n / 2]) / 2.0)
    }
}

/// Group `rows` of `(key, value)` pairs by key and aggregate each group.
///
/// Returns a map from group key to the aggregated value; groups on which the
/// aggregate is undefined (e.g. `Avg` of an empty group) are omitted.
pub fn group_by<K>(rows: impl IntoIterator<Item = (K, f64)>, agg: AggFn) -> HashMap<K, f64>
where
    K: std::hash::Hash + Eq,
{
    let mut groups: HashMap<K, Vec<f64>> = HashMap::new();
    for (k, v) in rows {
        groups.entry(k).or_default().push(v);
    }
    groups
        .into_iter()
        .filter_map(|(k, vs)| agg.apply(&vs).map(|a| (k, a)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_aggregates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(AggFn::Count.apply(&xs), Some(4.0));
        assert_eq!(AggFn::Sum.apply(&xs), Some(10.0));
        assert_eq!(AggFn::Avg.apply(&xs), Some(2.5));
        assert_eq!(AggFn::Min.apply(&xs), Some(1.0));
        assert_eq!(AggFn::Max.apply(&xs), Some(4.0));
        assert_eq!(AggFn::Var.apply(&xs), Some(1.25));
        assert_eq!(AggFn::Median.apply(&xs), Some(2.5));
    }

    #[test]
    fn empty_input_behaviour() {
        assert_eq!(AggFn::Count.apply(&[]), Some(0.0));
        assert_eq!(AggFn::Sum.apply(&[]), Some(0.0));
        assert_eq!(AggFn::Avg.apply(&[]), None);
        assert_eq!(AggFn::Min.apply(&[]), None);
        assert_eq!(AggFn::Max.apply(&[]), None);
        assert_eq!(AggFn::Var.apply(&[]), None);
        assert_eq!(AggFn::Median.apply(&[]), None);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[5.0]), Some(5.0));
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for agg in [
            AggFn::Count,
            AggFn::Sum,
            AggFn::Avg,
            AggFn::Min,
            AggFn::Max,
            AggFn::Var,
            AggFn::Median,
        ] {
            assert_eq!(AggFn::parse(agg.name()), Some(agg));
            assert_eq!(AggFn::parse(&agg.name().to_lowercase()), Some(agg));
        }
        assert_eq!(AggFn::parse("MEAN"), Some(AggFn::Avg));
        assert_eq!(AggFn::parse("nope"), None);
    }

    #[test]
    fn group_by_aggregates_per_key() {
        let rows = vec![("a", 1.0), ("a", 3.0), ("b", 10.0)];
        let avg = group_by(rows.clone(), AggFn::Avg);
        assert_eq!(avg["a"], 2.0);
        assert_eq!(avg["b"], 10.0);
        let count = group_by(rows, AggFn::Count);
        assert_eq!(count["a"], 2.0);
        assert_eq!(count["b"], 1.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(AggFn::Var.apply(&[2.0, 2.0, 2.0]), Some(0.0));
    }

    #[test]
    fn nan_values_are_missing_not_poison() {
        // Regression: a NaN value (an empty peer set rendered numerically)
        // used to propagate through AVG/SUM/VAR/MEDIAN and poison the
        // aggregate; MIN/MAX silently dropped it while COUNT counted it.
        let nan = f64::NAN;
        assert_eq!(AggFn::Avg.apply(&[1.0, nan, 3.0]), Some(2.0));
        assert_eq!(AggFn::Sum.apply(&[1.0, nan, 3.0]), Some(4.0));
        assert_eq!(AggFn::Count.apply(&[1.0, nan, 3.0]), Some(2.0));
        assert_eq!(AggFn::Var.apply(&[1.0, nan, 3.0]), Some(1.0));
        assert_eq!(AggFn::Median.apply(&[1.0, nan, 3.0]), Some(2.0));
        assert_eq!(AggFn::Min.apply(&[1.0, nan, 3.0]), Some(1.0));
        assert_eq!(AggFn::Max.apply(&[1.0, nan, 3.0]), Some(3.0));
        // An effectively empty group behaves exactly like an empty group:
        // the average is undefined, never NaN.
        for agg in [
            AggFn::Avg,
            AggFn::Min,
            AggFn::Max,
            AggFn::Var,
            AggFn::Median,
        ] {
            assert_eq!(agg.apply(&[nan, nan]), None, "{agg}");
        }
        assert_eq!(AggFn::Count.apply(&[nan]), Some(0.0));
        assert_eq!(AggFn::Sum.apply(&[nan]), Some(0.0));
        assert_eq!(median(&[nan]), None);
        // And group_by drops such groups instead of storing NaN.
        let rows = vec![("empty", nan), ("ok", 2.0)];
        let avg = group_by(rows, AggFn::Avg);
        assert!(!avg.contains_key("empty"));
        assert_eq!(avg["ok"], 2.0);
    }
}
