//! Conjunctive-query evaluation over relational skeletons.
//!
//! The evaluator computes the set of substitutions (variable bindings) that
//! satisfy a [`ConjunctiveQuery`] in a [`Skeleton`]. It is used to ground
//! relational causal rules (Definition 3.5): for a rule with condition
//! `Q(Y)`, every answer of `Q` over the skeleton yields one grounded rule.
//!
//! Evaluation is planned: [`crate::plan`] chooses a most-selective-first
//! join order, an access path per atom (scan, positional hash probe, or
//! attribute-index fetch), semi-join pruning passes, and a register slot
//! per variable. Planning itself is cached by query *shape* (structure
//! modulo constants, [`crate::plan::shape_key`]) in the shared
//! [`IndexCache`]: repeated queries differing only in constants re-target
//! the cached template via [`crate::plan::instantiate`] instead of
//! replanning. The executor here is *dense*: partial answers are flat
//! register tuples of interned [`Sym`]bols (one `u32` per variable slot,
//! see [`Skeleton::interner`]) carried through scan/probe/check steps with
//! zero per-row maps and zero heap values; matching is integer comparison
//! against the skeleton's dense mirrors and the [`IndexCache`]'s
//! symbol-keyed composite indexes. Results surface as [`TupleAnswers`];
//! the classic `Vec<Bindings>` form is produced only at the API boundary.
//! When a step carries enough rows, the executor splits them into
//! contiguous chunks and probes them on parallel workers (the `rayon`
//! facade, honouring `RAYON_NUM_THREADS`), concatenating chunk outputs in
//! order so results are bit-identical at any thread count.
//!
//! The final join step can also be *streamed*:
//! [`evaluate_tuples_chunked`] / [`evaluate_tuples_filtered_chunked`]
//! deliver its output to a sink as order-preserving [`TupleAnswers`]
//! chunks without ever materialising the full answer set — the
//! pipelined-execution entry point the grounding layer folds rows through.
//!
//! Two reference executors are kept alongside:
//!
//! * [`evaluate_naive`] — the deliberately unoptimised nested-loop
//!   evaluator (atoms in source order, full scans only). It defines the
//!   semantics; every other executor must agree with it on every query,
//!   which the differential fuzzer in `tests/eval_reference.rs` enforces.
//! * [`evaluate_bindings_in`] / [`evaluate_bindings_filtered`] — the
//!   previous hashmap-of-`Value`s plan executor, preserved verbatim so the
//!   `answer_pipeline` benchmark can race the dense pipeline against it.

use crate::error::{RelError, RelResult};
use crate::index::IndexCache;
use crate::instance::Instance;
use crate::plan::{
    instantiate, plan_query, plan_query_filtered, shape_key, Access, EqFilter, Plan, SemiJoin,
    SlotTerm,
};
use crate::query::{ConjunctiveQuery, Term};
use crate::schema::{PredicateKind, RelationalSchema};
use crate::skeleton::Skeleton;
use crate::symbols::{Sym, SymSet, SymbolTable};
use crate::value::Value;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// A substitution binding variable names to values.
pub type Bindings = HashMap<String, Value>;

/// Debug-build check that the planner emitted a structurally sound plan
/// (see [`crate::plan::verify`]). Free in release builds; the fuzz suite
/// and the plan snapshot tests additionally run the verifier
/// unconditionally.
#[inline]
fn debug_assert_plan(schema: &RelationalSchema, plan: &Plan) {
    #[cfg(debug_assertions)]
    if let Err(e) = crate::plan::verify(schema, plan) {
        panic!("planner emitted an invalid plan: {e}\n{plan}");
    }
    #[cfg(not(debug_assertions))]
    let _ = (schema, plan);
}

/// Plan `query` through the shape-keyed plan cache of `cache`: a cached
/// template of the same [`shape_key`] is re-targeted at this query's
/// constants with [`instantiate`] (skipping the planner entirely);
/// otherwise the query is cold-planned and the plan stored as the shape's
/// template. Plan *errors* (unknown predicates, arity mismatches) are never
/// cached, so rejected queries report the same error on every attempt.
fn plan_shaped(
    cache: &IndexCache,
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
) -> RelResult<Arc<Plan>> {
    let shape = shape_key(query, &[]);
    if let Some(template) = cache.plan_template(&shape) {
        if let Some(plan) = instantiate(&template, query, &[]) {
            return Ok(Arc::new(plan));
        }
    }
    let plan = Arc::new(plan_query(schema, skeleton, query)?);
    cache.store_plan_template(shape, Arc::clone(&plan));
    Ok(plan)
}

/// Filtered form of [`plan_shaped`] (templates keyed on query + filter
/// shape).
fn plan_shaped_filtered(
    cache: &IndexCache,
    schema: &RelationalSchema,
    instance: &Instance,
    query: &ConjunctiveQuery,
    filters: &[EqFilter],
) -> RelResult<Arc<Plan>> {
    let shape = shape_key(query, filters);
    if let Some(template) = cache.plan_template(&shape) {
        if let Some(plan) = instantiate(&template, query, filters) {
            return Ok(Arc::new(plan));
        }
    }
    let plan = Arc::new(plan_query_filtered(
        schema, instance, cache, query, filters,
    )?);
    cache.store_plan_template(shape, Arc::clone(&plan));
    Ok(plan)
}

/// Row count above which a step's probe loop is split across the worker
/// threads of the `rayon` facade. Below it, thread spawn overhead dwarfs
/// the probe work.
const PARALLEL_ROW_THRESHOLD: usize = 4096;

/// Input-row block size for sequential streamed delivery: large enough to
/// amortise per-batch bookkeeping in the sink, small enough that the full
/// answer set of a big join is never resident at once.
const STREAM_BLOCK_ROWS: usize = 16 * PARALLEL_ROW_THRESHOLD;

/// Floor on the parallel input-block size: below this, per-range Vec and
/// scheduling bookkeeping dwarfs the probe work, so a pathologically small
/// configured morsel size (the stress matrix runs morsel = 1) degrades
/// gracefully instead of drowning the executor in one-row ranges.
const MIN_PAR_BLOCK_ROWS: usize = 256;

/// Input-row block size for one parallel work item of a probe step.
///
/// Blocks follow the facade's configured morsel size, so a skewed step (one
/// hub row fanning out to thousands of join partners) splits into many
/// stealable ranges instead of serialising one chunk-per-worker — the
/// work-stealing scheduler rebalances them across workers. Outputs are
/// concatenated in range order, so results stay bit-identical at any thread
/// count and any morsel size.
fn par_block_rows(count: usize, threads: usize) -> usize {
    rayon::current_morsel_size()
        .max(MIN_PAR_BLOCK_ROWS)
        .min(count.div_ceil(threads).max(1))
}

/// Dense query answers: one flat register tuple of interned symbols per
/// answer, resolved back to [`Value`]s on demand through the skeleton's
/// interner.
///
/// This is the zero-conversion interface the grounding pipeline consumes;
/// [`TupleAnswers::to_bindings`] materialises the classic
/// `Vec<Bindings>` form for callers that want named maps.
#[derive(Debug)]
pub struct TupleAnswers<'a> {
    vars: Vec<String>,
    width: usize,
    count: usize,
    data: Vec<Sym>,
    interner: &'a SymbolTable,
}

impl<'a> TupleAnswers<'a> {
    /// Slot layout: `vars()[i]` is the variable stored in register `i` of
    /// every row.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// The register slot of `var`, if the query binds it.
    pub fn slot_of(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether there are no answers.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `i`-th answer row (one symbol per register slot).
    pub fn row(&self, i: usize) -> &[Sym] {
        if self.width == 0 {
            assert!(
                i < self.count,
                "row {i} out of bounds ({} rows)",
                self.count
            );
            &[]
        } else {
            &self.data[i * self.width..(i + 1) * self.width]
        }
    }

    /// Iterate over all answer rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Sym]> + '_ {
        (0..self.count).map(move |i| self.row(i))
    }

    /// Resolve a symbol from an answer row back to its value.
    ///
    /// Resolution returns the *first-interned representative* of the
    /// symbol's `Value`-equality class: if a skeleton stores both `Int(2)`
    /// and `Float(2.0)` (which compare equal and therefore share a
    /// symbol), every answer resolves to whichever variant was interned
    /// first — a canonicalisation the per-tuple executors did not perform.
    /// The two variants are `==` either way; only the enum variant of the
    /// returned value can differ.
    pub fn value(&self, sym: Sym) -> &'a Value {
        self.interner.value(sym)
    }

    /// Convert to the classic named-map representation (the boundary
    /// conversion the fast path avoids). Values are first-interned
    /// representatives — see [`TupleAnswers::value`].
    pub fn to_bindings(&self) -> Vec<Bindings> {
        self.rows()
            .map(|row| {
                self.vars
                    .iter()
                    .zip(row)
                    .map(|(v, &s)| (v.clone(), self.interner.value(s).clone()))
                    .collect()
            })
            .collect()
    }
}

/// Evaluate `query` over `skeleton`, returning all satisfying substitutions.
///
/// The result binds exactly the variables appearing in the query. An empty
/// query returns a single empty binding (the query `true`). Indexes built
/// for the evaluation are discarded afterwards; use [`evaluate_in`] with a
/// shared [`IndexCache`] to reuse them across queries.
pub fn evaluate(
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
) -> RelResult<Vec<Bindings>> {
    let cache = IndexCache::with_fingerprint(0);
    evaluate_in(&cache, schema, skeleton, query)
}

/// Evaluate `query` over `skeleton`, reusing (and lazily extending) the
/// secondary indexes in `cache`.
///
/// The caller is responsible for cache validity: the cache must have been
/// created for (or revalidated against) the skeleton's current content.
pub fn evaluate_in(
    cache: &IndexCache,
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
) -> RelResult<Vec<Bindings>> {
    Ok(evaluate_tuples(cache, schema, skeleton, query)?.to_bindings())
}

/// Evaluate `query` over `skeleton` on the dense fast path, returning
/// register tuples instead of named maps.
pub fn evaluate_tuples<'a>(
    cache: &IndexCache,
    schema: &RelationalSchema,
    skeleton: &'a Skeleton,
    query: &ConjunctiveQuery,
) -> RelResult<TupleAnswers<'a>> {
    let plan = plan_shaped(cache, schema, skeleton, query)?;
    debug_assert_plan(schema, &plan);
    Ok(execute_tuples(&plan, schema, skeleton, None, cache))
}

/// Evaluate `query` with equality `filters` over a full instance.
///
/// Filters implement CaRL's attribute equality comparisons natively: a
/// binding survives iff every filter's arguments resolve and the instance
/// assigns exactly the required value. Selective filters are pushed into
/// the plan (attribute-index fetches replace scans); the rest are applied
/// at the earliest step where their variables are bound. A filter whose
/// variables the query never binds makes the result empty, matching the
/// semantics of comparison post-filtering.
pub fn evaluate_filtered(
    cache: &IndexCache,
    schema: &RelationalSchema,
    instance: &Instance,
    query: &ConjunctiveQuery,
    filters: &[EqFilter],
) -> RelResult<Vec<Bindings>> {
    Ok(evaluate_tuples_filtered(cache, schema, instance, query, filters)?.to_bindings())
}

/// Filtered evaluation on the dense fast path (see [`evaluate_filtered`]).
pub fn evaluate_tuples_filtered<'a>(
    cache: &IndexCache,
    schema: &RelationalSchema,
    instance: &'a Instance,
    query: &ConjunctiveQuery,
    filters: &[EqFilter],
) -> RelResult<TupleAnswers<'a>> {
    let plan = plan_shaped_filtered(cache, schema, instance, query, filters)?;
    debug_assert_plan(schema, &plan);
    Ok(execute_tuples(
        &plan,
        schema,
        instance.skeleton(),
        Some(instance),
        cache,
    ))
}

/// Streaming evaluation: run the plan and hand the final join step's output
/// to `on_batch` as order-preserving [`TupleAnswers`] chunks instead of one
/// materialised answer set.
///
/// The sink sees exactly the rows `evaluate_tuples` would return, in exactly
/// the same order; only the chunk boundaries are an executor detail
/// (fixed-size input blocks when sequential, per-worker blocks computed in
/// bounded waves when the final step runs parallel — at most one wave's
/// output is ever resident). A sink that folds rows in order therefore
/// produces results that are bit-identical to folding the materialised
/// answers — at any `RAYON_NUM_THREADS`. Queries with answers too small to
/// chunk arrive as a single batch; queries with no answers deliver no
/// batches at all.
///
/// Errors from the sink abort the evaluation and are returned as-is.
pub fn evaluate_tuples_chunked<'a>(
    cache: &IndexCache,
    schema: &RelationalSchema,
    skeleton: &'a Skeleton,
    query: &ConjunctiveQuery,
    on_batch: &mut dyn FnMut(&TupleAnswers<'a>) -> RelResult<()>,
) -> RelResult<()> {
    let plan = plan_shaped(cache, schema, skeleton, query)?;
    debug_assert_plan(schema, &plan);
    execute_tuples_stream(&plan, schema, skeleton, None, cache, on_batch)
}

/// Streaming filtered evaluation over a full instance (the sink-based form
/// of [`evaluate_tuples_filtered`]; see [`evaluate_tuples_chunked`] for the
/// delivery contract).
pub fn evaluate_tuples_filtered_chunked<'a>(
    cache: &IndexCache,
    schema: &RelationalSchema,
    instance: &'a Instance,
    query: &ConjunctiveQuery,
    filters: &[EqFilter],
    on_batch: &mut dyn FnMut(&TupleAnswers<'a>) -> RelResult<()>,
) -> RelResult<()> {
    let plan = plan_shaped_filtered(cache, schema, instance, query, filters)?;
    debug_assert_plan(schema, &plan);
    execute_tuples_stream(
        &plan,
        schema,
        instance.skeleton(),
        Some(instance),
        cache,
        on_batch,
    )
}

/// Nested-loop reference evaluation: atoms in the order given, full scans
/// only, no indexes, no reordering.
///
/// This is the semantic baseline the planned evaluator is differentially
/// tested against, and the "naive" side of the grounding-scale benchmark.
pub fn evaluate_naive(
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
) -> RelResult<Vec<Bindings>> {
    // The exact validation the planner runs, shared so the two paths can
    // never diverge on which queries they reject.
    crate::plan::validate(schema, query)?;
    let mut partials: Vec<Bindings> = vec![Bindings::new()];
    for atom in &query.atoms {
        let mut next: Vec<Bindings> = Vec::new();
        for binding in &partials {
            match schema.predicate_kind(&atom.predicate) {
                Some(PredicateKind::Entity) => {
                    for key in skeleton.entity_keys(&atom.predicate) {
                        if let Some(ext) = unify(binding, &atom.terms, std::slice::from_ref(key)) {
                            next.push(ext);
                        }
                    }
                }
                Some(PredicateKind::Relationship) => {
                    for tuple in skeleton.relationship_tuples(&atom.predicate) {
                        if let Some(ext) = unify(binding, &atom.terms, tuple) {
                            next.push(ext);
                        }
                    }
                }
                None => {}
            }
        }
        partials = next;
    }
    Ok(partials)
}

/// Evaluate the query and project the answers onto `vars` (in order),
/// deduplicating projected rows (by value equality, on interned symbols —
/// no per-row key strings).
pub fn evaluate_project(
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
    vars: &[String],
) -> RelResult<Vec<Vec<Value>>> {
    let cache = IndexCache::with_fingerprint(0);
    let answers = evaluate_tuples(&cache, schema, skeleton, query)?;
    // An unbound projection variable only errors when there is an answer to
    // project — the behaviour per-answer projection always had.
    if answers.is_empty() {
        return Ok(Vec::new());
    }
    let slots: Vec<usize> = vars
        .iter()
        .map(|v| {
            answers.slot_of(v).ok_or_else(|| {
                RelError::MalformedQuery(format!(
                    "projection variable not bound by query: {vars:?}"
                ))
            })
        })
        .collect::<RelResult<_>>()?;
    let mut seen: SymSet<Vec<Sym>> = SymSet::default();
    let mut rows = Vec::new();
    for row in answers.rows() {
        let key: Vec<Sym> = slots.iter().map(|&s| row[s]).collect();
        if seen.insert(key) {
            rows.push(
                slots
                    .iter()
                    .map(|&s| answers.value(row[s]).clone())
                    .collect(),
            );
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// The dense tuple executor.
// ---------------------------------------------------------------------------

/// A flat batch of register tuples: `count` rows of `width` symbols each.
struct Rows {
    width: usize,
    count: usize,
    data: Vec<Sym>,
}

impl Rows {
    fn empty(width: usize) -> Self {
        Self {
            width,
            count: 0,
            data: Vec::new(),
        }
    }

    /// The single seed row (all registers unbound).
    fn seed(width: usize) -> Self {
        Self {
            width,
            count: 1,
            data: vec![Sym::UNBOUND; width],
        }
    }

    fn row(&self, i: usize) -> &[Sym] {
        if self.width == 0 {
            &[]
        } else {
            &self.data[i * self.width..(i + 1) * self.width]
        }
    }

    /// Keep only rows satisfying `pred`, preserving order.
    fn retain(&mut self, mut pred: impl FnMut(&[Sym]) -> bool) {
        if self.width == 0 {
            // Width-0 rows are all identical; one check decides them all.
            if self.count > 0 && !pred(&[]) {
                self.count = 0;
            }
            return;
        }
        let width = self.width;
        let mut kept = 0usize;
        for i in 0..self.count {
            if pred(&self.data[i * width..(i + 1) * width]) {
                if kept != i {
                    self.data
                        .copy_within(i * width..(i + 1) * width, kept * width);
                }
                kept += 1;
            }
        }
        self.count = kept;
        self.data.truncate(kept * width);
    }
}

/// How a pinned equality filter is evaluated against register rows.
enum FilterEval {
    /// Constant-only filter that holds: no per-row work.
    Pass,
    /// Can never hold (no instance, unbound variable, or no matching
    /// assignment): clears the batch at its pinned step.
    Never,
    /// Row key (the symbols at `slots`, in filter-argument order) must be
    /// in `admit` — the interned projections of every attribute assignment
    /// carrying the required value whose constant positions match.
    Admit {
        slots: Vec<usize>,
        admit: SymSet<Vec<Sym>>,
    },
}

impl FilterEval {
    fn build(
        filter: &EqFilter,
        plan: &Plan,
        skeleton: &Skeleton,
        instance: Option<&Instance>,
        cache: &IndexCache,
    ) -> Self {
        let Some(instance) = instance else {
            return FilterEval::Never;
        };
        // Argument spec: constant value or register slot per position.
        let mut consts: Vec<Option<&Value>> = Vec::with_capacity(filter.args.len());
        let mut slots: Vec<usize> = Vec::new();
        let mut var_positions: Vec<usize> = Vec::new();
        for (i, arg) in filter.args.iter().enumerate() {
            match arg {
                Term::Const(v) => consts.push(Some(v)),
                Term::Var(name) => {
                    let Some(slot) = plan.slot_of(name) else {
                        return FilterEval::Never;
                    };
                    consts.push(None);
                    slots.push(slot);
                    var_positions.push(i);
                }
            }
        }
        // Project every assignment carrying the required value onto the
        // variable positions, checking constants at build time. Assignment
        // keys referencing values the skeleton never interned cannot equal
        // any register symbol and are skipped.
        let index = cache.attribute_index(instance, &filter.attr);
        let interner = skeleton.interner();
        let mut admit: SymSet<Vec<Sym>> = SymSet::default();
        'units: for unit in index.units(&filter.value) {
            if unit.len() != filter.args.len() {
                continue;
            }
            for (component, required) in unit.iter().zip(&consts) {
                if let Some(required) = required {
                    if component != *required {
                        continue 'units;
                    }
                }
            }
            let mut key = Vec::with_capacity(var_positions.len());
            for &p in &var_positions {
                match interner.get(&unit[p]) {
                    Some(sym) => key.push(sym),
                    None => continue 'units,
                }
            }
            admit.insert(key);
        }
        if slots.is_empty() {
            if admit.contains(&Vec::new()) {
                FilterEval::Pass
            } else {
                FilterEval::Never
            }
        } else {
            FilterEval::Admit { slots, admit }
        }
    }
}

/// Retain only rows satisfying every filter pinned to step `after`.
fn apply_tuple_filters(plan: &Plan, after: usize, filters: &[FilterEval], rows: &mut Rows) {
    for (eval, ready) in filters.iter().zip(&plan.filter_after) {
        if *ready != Some(after) {
            continue;
        }
        match eval {
            FilterEval::Pass => {}
            FilterEval::Never => {
                *rows = Rows::empty(rows.width);
                return;
            }
            FilterEval::Admit { slots, admit } => {
                let mut key = Vec::with_capacity(slots.len());
                rows.retain(|row| {
                    key.clear();
                    key.extend(slots.iter().map(|&s| row[s]));
                    admit.contains(&key)
                });
            }
        }
    }
}

/// The candidate source of one plan step, resolved once before the row loop.
enum StepSource<'s> {
    /// Admitted entity keys (scan, semi-join pruned).
    EntityScan(Vec<Sym>),
    /// Membership check of the resolved key symbol in an entity class.
    EntityProbe,
    /// Admitted relationship tuples (scan, arity- and semi-join pruned).
    RelScan(Vec<&'s [Sym]>),
    /// Single-position probe against the skeleton's positional index
    /// (resolved once per step; `None` when the index has no entries).
    RelProbeSingle {
        pos: usize,
        index: Option<&'s crate::symbols::SymMap<Sym, Vec<u32>>>,
    },
    /// Composite probe against a cached multi-position index.
    RelProbeMulti {
        index: std::sync::Arc<crate::index::CompositeIndex>,
        positions: &'s [usize],
    },
    /// Candidate units from an attribute equality index.
    AttrFetch(Vec<Vec<Sym>>),
}

/// Resolve one plan step's constants and candidate source, once before its
/// row loop. Returns `None` when a constant of the step was never interned
/// by the skeleton — such a step matches no tuple, so the whole conjunction
/// is empty.
fn resolve_step<'s>(
    plan: &Plan,
    step: &'s crate::plan::PlanStep,
    schema: &RelationalSchema,
    skeleton: &'s Skeleton,
    instance: Option<&Instance>,
    cache: &IndexCache,
) -> Option<(Vec<Sym>, StepSource<'s>)> {
    let interner = skeleton.interner();
    let mut consts: Vec<Sym> = vec![Sym::UNBOUND; step.layout.len()];
    for (p, (slot, term)) in step.layout.iter().zip(&step.atom.terms).enumerate() {
        if *slot == SlotTerm::Const {
            let Term::Const(v) = term else {
                unreachable!("layout Const aligns with a constant term")
            };
            consts[p] = interner.get(v)?;
        }
    }

    let source = match &step.access {
        Access::ScanEntity => StepSource::EntityScan(
            skeleton
                .entity_syms(&step.atom.predicate)
                .iter()
                .copied()
                .filter(|&sym| semijoins_admit(skeleton, &step.semijoins, |_| sym))
                .collect(),
        ),
        Access::ProbeEntity => StepSource::EntityProbe,
        Access::ScanRelationship => StepSource::RelScan(
            skeleton
                .relationship_syms(&step.atom.predicate)
                .iter()
                .map(Vec::as_slice)
                // Arity-violating tuples (possible via the raw
                // `Skeleton` API) can never unify; drop them before
                // the semi-join passes index into them.
                .filter(|t| t.len() == step.layout.len())
                .filter(|t| semijoins_admit(skeleton, &step.semijoins, |p| t[p]))
                .collect(),
        ),
        Access::ProbeRelationship { positions } => match positions.as_slice() {
            [position] => StepSource::RelProbeSingle {
                pos: *position,
                index: skeleton.positional_index(&step.atom.predicate, *position),
            },
            _ => StepSource::RelProbeMulti {
                index: cache.relationship_index(skeleton, &step.atom.predicate, positions),
                positions,
            },
        },
        Access::ProbeAttribute { filter } => {
            let inst = instance
                .expect("planner only emits attribute fetches when an instance is available");
            let flt = &plan.filters[*filter];
            let index = cache.attribute_index(inst, &flt.attr);
            // Attribute assignments are not guaranteed to reference
            // existing units, so intersect with the skeleton (any unit
            // present in the skeleton is fully interned).
            let kind = schema.predicate_kind(&step.atom.predicate);
            let units: Vec<Vec<Sym>> = index
                .units(&flt.value)
                .iter()
                .filter_map(|unit| {
                    let syms: Option<Vec<Sym>> = unit.iter().map(|v| interner.get(v)).collect();
                    let syms = syms?;
                    let present = match kind {
                        Some(PredicateKind::Entity) => {
                            syms.len() == 1
                                && skeleton.has_entity_sym(&step.atom.predicate, syms[0])
                        }
                        Some(PredicateKind::Relationship) => {
                            skeleton.has_relationship_syms(&step.atom.predicate, &syms)
                        }
                        None => false,
                    };
                    present.then_some(syms)
                })
                .collect();
            StepSource::AttrFetch(units)
        }
    };
    Some((consts, source))
}

/// Run a plan against a skeleton (and, when filters are present, the
/// instance carrying the attribute assignments they consult), producing
/// dense register tuples.
pub(crate) fn execute_tuples<'a>(
    plan: &Plan,
    schema: &RelationalSchema,
    skeleton: &'a Skeleton,
    instance: Option<&Instance>,
    cache: &IndexCache,
) -> TupleAnswers<'a> {
    let width = plan.slots.len();
    let interner = skeleton.interner();
    let done = |rows: Rows| TupleAnswers {
        vars: plan.slots.clone(),
        width,
        count: rows.count,
        data: rows.data,
        interner,
    };
    if plan.unsatisfiable() {
        return done(Rows::empty(width));
    }

    let filters: Vec<FilterEval> = plan
        .filters
        .iter()
        .map(|f| FilterEval::build(f, plan, skeleton, instance, cache))
        .collect();

    let mut rows = Rows::seed(width);
    apply_tuple_filters(plan, 0, &filters, &mut rows);

    for (i, step) in plan.steps.iter().enumerate() {
        if rows.count == 0 {
            break;
        }
        let Some((consts, source)) = resolve_step(plan, step, schema, skeleton, instance, cache)
        else {
            rows = Rows::empty(width);
            break;
        };
        rows = run_step(skeleton, step, &source, &consts, rows);
        apply_tuple_filters(plan, i + 1, &filters, &mut rows);
    }
    done(rows)
}

/// Streaming form of [`execute_tuples`]: identical up to the final step,
/// whose output is delivered to `on_batch` chunk by chunk (in row order)
/// instead of being concatenated into one answer set.
fn execute_tuples_stream<'a>(
    plan: &Plan,
    schema: &RelationalSchema,
    skeleton: &'a Skeleton,
    instance: Option<&Instance>,
    cache: &IndexCache,
    on_batch: &mut dyn FnMut(&TupleAnswers<'a>) -> RelResult<()>,
) -> RelResult<()> {
    let width = plan.slots.len();
    let interner = skeleton.interner();
    if plan.unsatisfiable() {
        return Ok(());
    }

    let filters: Vec<FilterEval> = plan
        .filters
        .iter()
        .map(|f| FilterEval::build(f, plan, skeleton, instance, cache))
        .collect();

    let mut rows = Rows::seed(width);
    apply_tuple_filters(plan, 0, &filters, &mut rows);

    // Deliver one chunk of (already filtered) output rows, skipping empties.
    let deliver = |rows: Rows,
                   on_batch: &mut dyn FnMut(&TupleAnswers<'a>) -> RelResult<()>|
     -> RelResult<()> {
        if rows.count == 0 {
            return Ok(());
        }
        on_batch(&TupleAnswers {
            vars: plan.slots.clone(),
            width,
            count: rows.count,
            data: rows.data,
            interner,
        })
    };

    let Some(last) = plan.steps.len().checked_sub(1) else {
        // The empty query: the (possibly filtered-away) seed row is the
        // whole answer.
        return deliver(rows, on_batch);
    };

    for (i, step) in plan.steps[..last].iter().enumerate() {
        if rows.count == 0 {
            return Ok(());
        }
        let Some((consts, source)) = resolve_step(plan, step, schema, skeleton, instance, cache)
        else {
            return Ok(());
        };
        rows = run_step(skeleton, step, &source, &consts, rows);
        apply_tuple_filters(plan, i + 1, &filters, &mut rows);
    }
    if rows.count == 0 {
        return Ok(());
    }
    let step = &plan.steps[last];
    let Some((consts, source)) = resolve_step(plan, step, schema, skeleton, instance, cache) else {
        return Ok(());
    };

    let threads = rayon::current_num_threads();
    if rows.count >= PARALLEL_ROW_THRESHOLD && threads > 1 && width > 0 {
        // Parallel, in bounded *waves*: the input splits into morsel-sized
        // blocks, each wave computes a few blocks per worker concurrently
        // (enough surplus that the scheduler can steal within the wave) and
        // delivers their outputs in order before the next wave starts. Big
        // joins stay parallel while at most one wave's output is resident —
        // never the full answer set.
        let block = par_block_rows(rows.count, threads).min(STREAM_BLOCK_ROWS);
        for wave in chunk_ranges(rows.count, block).chunks(threads * 4) {
            let parts: Vec<(Vec<Sym>, usize)> = wave
                .to_vec()
                .into_par_iter()
                .map(|range| run_step_range(skeleton, step, &source, &consts, &rows, range))
                .collect();
            for (data, count) in parts {
                let mut out = Rows { width, count, data };
                apply_tuple_filters(plan, last + 1, &filters, &mut out);
                deliver(out, on_batch)?;
            }
        }
    } else {
        // Sequential: stream fixed-size input blocks so the full answer set
        // is never resident at once.
        for range in chunk_ranges(rows.count, STREAM_BLOCK_ROWS) {
            let (data, count) = run_step_range(skeleton, step, &source, &consts, &rows, range);
            let mut out = Rows { width, count, data };
            apply_tuple_filters(plan, last + 1, &filters, &mut out);
            deliver(out, on_batch)?;
        }
    }
    Ok(())
}

/// Contiguous ranges of `0..count` in blocks of `chunk` (the final range may
/// be shorter).
fn chunk_ranges(count: usize, chunk: usize) -> Vec<std::ops::Range<usize>> {
    let chunk = chunk.max(1);
    (0..count)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(count))
        .collect()
}

/// Extend the rows of one input range through one step, returning the flat
/// output batch and its row count.
fn run_step_range(
    skeleton: &Skeleton,
    step: &crate::plan::PlanStep,
    source: &StepSource<'_>,
    consts: &[Sym],
    rows: &Rows,
    range: std::ops::Range<usize>,
) -> (Vec<Sym>, usize) {
    let rel = step.atom.predicate.as_str();
    let rel_tuples = skeleton.relationship_syms(rel);
    let layout = step.layout.as_slice();
    let mut out: Vec<Sym> = Vec::new();
    let mut produced = 0usize;
    for i in range {
        let base = rows.row(i);
        match source {
            StepSource::EntityScan(candidates) => {
                for &cand in candidates {
                    if try_extend(&mut out, base, layout, consts, &[cand]) {
                        produced += 1;
                    }
                }
            }
            StepSource::EntityProbe => {
                let key = resolve_slot(layout[0], consts[0], base);
                if skeleton.has_entity_sym(rel, key) {
                    out.extend_from_slice(base);
                    produced += 1;
                }
            }
            StepSource::RelScan(candidates) => {
                for tuple in candidates {
                    if try_extend(&mut out, base, layout, consts, tuple) {
                        produced += 1;
                    }
                }
            }
            StepSource::RelProbeSingle { pos, index } => {
                let key = resolve_slot(layout[*pos], consts[*pos], base);
                let hits = index
                    .and_then(|idx| idx.get(&key))
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                for &row_id in hits {
                    let tuple = rel_tuples[row_id as usize].as_slice();
                    if try_extend(&mut out, base, layout, consts, tuple) {
                        produced += 1;
                    }
                }
            }
            StepSource::RelProbeMulti { index, positions } => {
                let key: Vec<Sym> = positions
                    .iter()
                    .map(|&p| resolve_slot(layout[p], consts[p], base))
                    .collect();
                for &row_id in index.rows(&key) {
                    let tuple = rel_tuples[row_id as usize].as_slice();
                    if try_extend(&mut out, base, layout, consts, tuple) {
                        produced += 1;
                    }
                }
            }
            StepSource::AttrFetch(units) => {
                for unit in units {
                    if try_extend(&mut out, base, layout, consts, unit) {
                        produced += 1;
                    }
                }
            }
        }
    }
    (out, produced)
}

/// Extend every row of `rows` through one step, splitting large batches
/// across parallel workers (chunk outputs are concatenated in order, so the
/// result is identical at any thread count).
fn run_step(
    skeleton: &Skeleton,
    step: &crate::plan::PlanStep,
    source: &StepSource<'_>,
    consts: &[Sym],
    rows: Rows,
) -> Rows {
    let width = rows.width;
    let threads = rayon::current_num_threads();
    let (data, count) = if rows.count >= PARALLEL_ROW_THRESHOLD && threads > 1 && width > 0 {
        let parts: Vec<(Vec<Sym>, usize)> =
            chunk_ranges(rows.count, par_block_rows(rows.count, threads))
                .into_par_iter()
                .map(|range| run_step_range(skeleton, step, source, consts, &rows, range))
                .collect();
        let mut data = Vec::with_capacity(parts.iter().map(|(d, _)| d.len()).sum());
        let mut count = 0usize;
        for (part, produced) in parts {
            data.extend(part);
            count += produced;
        }
        (data, count)
    } else {
        run_step_range(skeleton, step, source, consts, &rows, 0..rows.count)
    };
    Rows { width, count, data }
}

/// Resolve the symbol a probe compares on: the step constant, or the value
/// of an already-written register slot.
fn resolve_slot(slot: SlotTerm, const_sym: Sym, row: &[Sym]) -> Sym {
    match slot {
        SlotTerm::Const => const_sym,
        SlotTerm::Check(s) => row[s],
        SlotTerm::Write(_) => {
            unreachable!("planner probes only on bound positions")
        }
    }
}

/// Unify one candidate tuple against a base row, appending the extended row
/// to `out` on success. Handles constants, already-bound slots and repeated
/// variables within the atom (a `Write` followed by a `Check` of the same
/// slot).
fn try_extend(
    out: &mut Vec<Sym>,
    base: &[Sym],
    layout: &[SlotTerm],
    consts: &[Sym],
    tuple: &[Sym],
) -> bool {
    if layout.len() != tuple.len() {
        return false;
    }
    let start = out.len();
    out.extend_from_slice(base);
    for (p, (&slot, &sym)) in layout.iter().zip(tuple).enumerate() {
        let ok = match slot {
            SlotTerm::Const => consts[p] == sym,
            SlotTerm::Check(s) => out[start + s] == sym,
            SlotTerm::Write(s) => {
                out[start + s] = sym;
                true
            }
        };
        if !ok {
            out.truncate(start);
            return false;
        }
    }
    true
}

/// Whether a candidate passes every semi-join pass; `sym_at` maps a pruned
/// position to the candidate's symbol there.
fn semijoins_admit(
    skeleton: &Skeleton,
    semijoins: &[SemiJoin],
    sym_at: impl Fn(usize) -> Sym,
) -> bool {
    semijoins.iter().all(|sj| {
        let sym = sym_at(sj.position);
        match sj.source_kind {
            PredicateKind::Entity => skeleton.has_entity_sym(&sj.source_predicate, sym),
            PredicateKind::Relationship => {
                skeleton.contains_sym_at(&sj.source_predicate, sj.source_position, sym)
            }
        }
    })
}

// ---------------------------------------------------------------------------
// The PR 3 bindings executor, preserved for benchmarking and differential
// testing.
// ---------------------------------------------------------------------------

/// Evaluate `query` with the preserved hashmap-of-`Value`s executor (one
/// `Bindings` map cloned and extended per candidate match). Semantically
/// identical to [`evaluate_in`]; kept so the `answer_pipeline` benchmark
/// can race the dense tuple pipeline against its predecessor.
pub fn evaluate_bindings_in(
    cache: &IndexCache,
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
) -> RelResult<Vec<Bindings>> {
    let plan = plan_query(schema, skeleton, query)?;
    debug_assert_plan(schema, &plan);
    Ok(execute_bindings(&plan, schema, skeleton, None, cache))
}

/// Filtered evaluation on the preserved bindings executor (see
/// [`evaluate_bindings_in`]).
pub fn evaluate_bindings_filtered(
    cache: &IndexCache,
    schema: &RelationalSchema,
    instance: &Instance,
    query: &ConjunctiveQuery,
    filters: &[EqFilter],
) -> RelResult<Vec<Bindings>> {
    let plan = plan_query_filtered(schema, instance, cache, query, filters)?;
    debug_assert_plan(schema, &plan);
    Ok(execute_bindings(
        &plan,
        schema,
        instance.skeleton(),
        Some(instance),
        cache,
    ))
}

/// Run a plan with per-answer `Bindings` maps (the pre-dense executor).
fn execute_bindings(
    plan: &Plan,
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    instance: Option<&Instance>,
    cache: &IndexCache,
) -> Vec<Bindings> {
    if plan.unsatisfiable() {
        return Vec::new();
    }
    let mut partials: Vec<Bindings> = vec![Bindings::new()];
    apply_bindings_filters(plan, 0, instance, &mut partials);

    for (i, step) in plan.steps.iter().enumerate() {
        if partials.is_empty() {
            break;
        }
        let atom = &step.atom;
        let mut next: Vec<Bindings> = Vec::new();
        match &step.access {
            Access::ScanEntity => {
                let keys: Vec<&Value> = skeleton
                    .entity_keys(&atom.predicate)
                    .iter()
                    .filter(|key| value_semijoins_admit(skeleton, &step.semijoins, |_| *key))
                    .collect();
                for binding in &partials {
                    for key in &keys {
                        if let Some(ext) = unify(binding, &atom.terms, std::slice::from_ref(*key)) {
                            next.push(ext);
                        }
                    }
                }
            }
            Access::ProbeEntity => {
                for binding in &partials {
                    let key = resolve(&atom.terms[0], binding)
                        .expect("planner chose a probe because the term is bound");
                    if skeleton.has_entity(&atom.predicate, &key) {
                        next.push(binding.clone());
                    }
                }
            }
            Access::ScanRelationship => {
                let tuples: Vec<&Vec<Value>> = skeleton
                    .relationship_tuples(&atom.predicate)
                    .iter()
                    .filter(|t| t.len() == atom.terms.len())
                    .filter(|t| value_semijoins_admit(skeleton, &step.semijoins, |p| &t[p]))
                    .collect();
                for binding in &partials {
                    for tuple in &tuples {
                        if let Some(ext) = unify(binding, &atom.terms, tuple) {
                            next.push(ext);
                        }
                    }
                }
            }
            Access::ProbeRelationship { positions } => {
                if let [position] = positions.as_slice() {
                    for binding in &partials {
                        let key = resolve(&atom.terms[*position], binding)
                            .expect("planner chose the position because it is bound");
                        for tuple in
                            skeleton.relationship_tuples_with(&atom.predicate, *position, &key)
                        {
                            if let Some(ext) = unify(binding, &atom.terms, tuple) {
                                next.push(ext);
                            }
                        }
                    }
                } else {
                    let index = cache.relationship_index(skeleton, &atom.predicate, positions);
                    let table = skeleton.relationship_tuples(&atom.predicate);
                    let interner = skeleton.interner();
                    for binding in &partials {
                        let key: Option<Vec<Sym>> = positions
                            .iter()
                            .map(|&p| {
                                let v = resolve(&atom.terms[p], binding)
                                    .expect("planner chose the position because it is bound");
                                interner.get(&v)
                            })
                            .collect();
                        let Some(key) = key else { continue };
                        for &row in index.rows(&key) {
                            if let Some(ext) = unify(binding, &atom.terms, &table[row as usize]) {
                                next.push(ext);
                            }
                        }
                    }
                }
            }
            Access::ProbeAttribute { filter } => {
                let inst = instance
                    .expect("planner only emits attribute fetches when an instance is available");
                let flt = &plan.filters[*filter];
                let index = cache.attribute_index(inst, &flt.attr);
                let units: Vec<&Vec<Value>> = index
                    .units(&flt.value)
                    .iter()
                    .filter(|unit| match schema.predicate_kind(&atom.predicate) {
                        Some(PredicateKind::Entity) => {
                            unit.len() == 1 && skeleton.has_entity(&atom.predicate, &unit[0])
                        }
                        Some(PredicateKind::Relationship) => {
                            skeleton.has_relationship(&atom.predicate, unit)
                        }
                        None => false,
                    })
                    .collect();
                for binding in &partials {
                    for unit in &units {
                        if let Some(ext) = unify(binding, &atom.terms, unit) {
                            next.push(ext);
                        }
                    }
                }
            }
        }
        partials = next;
        apply_bindings_filters(plan, i + 1, instance, &mut partials);
    }
    partials
}

/// Retain only bindings satisfying every filter pinned to step `after`.
fn apply_bindings_filters(
    plan: &Plan,
    after: usize,
    instance: Option<&Instance>,
    partials: &mut Vec<Bindings>,
) {
    for (flt, ready) in plan.filters.iter().zip(&plan.filter_after) {
        if *ready != Some(after) {
            continue;
        }
        let Some(instance) = instance else {
            partials.clear();
            return;
        };
        partials.retain(|binding| filter_holds(flt, binding, instance));
    }
}

/// Whether a binding satisfies an equality filter (missing assignments
/// never satisfy).
fn filter_holds(filter: &EqFilter, binding: &Bindings, instance: &Instance) -> bool {
    let key: Option<Vec<Value>> = filter.args.iter().map(|t| resolve(t, binding)).collect();
    match key {
        Some(key) => instance.attribute(&filter.attr, &key) == Some(&filter.value),
        None => false,
    }
}

/// Whether a candidate passes every semi-join pass; `value_at` maps a
/// pruned position to the candidate's value there.
fn value_semijoins_admit<'a>(
    skeleton: &Skeleton,
    semijoins: &[SemiJoin],
    value_at: impl Fn(usize) -> &'a Value,
) -> bool {
    semijoins.iter().all(|sj| {
        let value = value_at(sj.position);
        match sj.source_kind {
            PredicateKind::Entity => skeleton.has_entity(&sj.source_predicate, value),
            PredicateKind::Relationship => {
                skeleton.contains_at(&sj.source_predicate, sj.source_position, value)
            }
        }
    })
}

/// Unify an atom's terms with a concrete tuple under `binding`, returning
/// the extended binding on success. Handles constants, already-bound
/// variables and repeated variables within the atom.
fn unify(binding: &Bindings, terms: &[Term], tuple: &[Value]) -> Option<Bindings> {
    if terms.len() != tuple.len() {
        return None;
    }
    let mut extended = binding.clone();
    for (term, value) in terms.iter().zip(tuple) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => match extended.get(v) {
                Some(bound) if bound != value => return None,
                Some(_) => {}
                None => {
                    extended.insert(v.clone(), value.clone());
                }
            },
        }
    }
    Some(extended)
}

/// Resolve a term to a value given the current binding, if possible.
fn resolve(term: &Term, binding: &Bindings) -> Option<Value> {
    match term {
        Term::Const(v) => Some(v.clone()),
        Term::Var(name) => binding.get(name).cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::query::{Atom, ConjunctiveQuery, Term};

    fn setup() -> (RelationalSchema, Skeleton) {
        let inst = Instance::review_example();
        (inst.schema().clone(), inst.skeleton().clone())
    }

    /// Canonicalise for multiset comparison.
    fn canonical(bindings: Vec<Bindings>) -> Vec<Vec<(String, String)>> {
        let mut rows: Vec<Vec<(String, String)>> = bindings
            .into_iter()
            .map(|b| {
                let mut row: Vec<(String, String)> =
                    b.into_iter().map(|(k, v)| (k, v.key_repr())).collect();
                row.sort();
                row
            })
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn empty_query_has_one_empty_answer() {
        let (schema, sk) = setup();
        let answers = evaluate(&schema, &sk, &ConjunctiveQuery::truth()).unwrap();
        assert_eq!(answers.len(), 1);
        assert!(answers[0].is_empty());
        // Dense form: one zero-width row.
        let cache = IndexCache::for_skeleton(&sk);
        let tuples = evaluate_tuples(&cache, &schema, &sk, &ConjunctiveQuery::truth()).unwrap();
        assert_eq!(tuples.len(), 1);
        assert!(tuples.row(0).is_empty());
        assert!(tuples.vars().is_empty());
    }

    #[test]
    fn single_entity_atom_enumerates_keys() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let answers = evaluate(&schema, &sk, &q).unwrap();
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn relationship_join_matches_paper_example() {
        let (schema, sk) = setup();
        // Author(A, S), Submitted(S, C): one answer per authorship (5).
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
        ]);
        let answers = evaluate(&schema, &sk, &q).unwrap();
        assert_eq!(answers.len(), 5);
        // Every answer binds all three variables.
        assert!(answers.iter().all(|b| b.len() == 3));
    }

    #[test]
    fn tuple_answers_expose_slots_and_resolve_values() {
        let (schema, sk) = setup();
        let cache = IndexCache::for_skeleton(&sk);
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
        ]);
        let answers = evaluate_tuples(&cache, &schema, &sk, &q).unwrap();
        assert_eq!(answers.len(), 5);
        let a = answers.slot_of("A").unwrap();
        let s = answers.slot_of("S").unwrap();
        let c = answers.slot_of("C").unwrap();
        assert_eq!(answers.slot_of("Z"), None);
        for row in answers.rows() {
            // Every register resolves to a skeleton value, and the row is
            // an actual authorship.
            let author = answers.value(row[a]).clone();
            let submission = answers.value(row[s]).clone();
            let conference = answers.value(row[c]).clone();
            assert!(sk.has_relationship("Author", &[author, submission.clone()]));
            assert!(sk.has_relationship("Submitted", &[submission, conference]));
        }
        // The boundary conversion agrees with direct map evaluation.
        assert_eq!(
            canonical(answers.to_bindings()),
            canonical(evaluate(&schema, &sk, &q).unwrap())
        );
    }

    #[test]
    fn constants_select() {
        let (schema, sk) = setup();
        // Who authored s3?
        let q = ConjunctiveQuery::new(vec![Atom::new(
            "Author",
            vec![Term::var("A"), Term::constant("s3")],
        )]);
        let mut authors: Vec<String> = evaluate(&schema, &sk, &q)
            .unwrap()
            .into_iter()
            .map(|b| b["A"].to_string())
            .collect();
        authors.sort();
        assert_eq!(authors, vec!["Carlos".to_string(), "Eva".to_string()]);
    }

    #[test]
    fn constants_missing_from_the_skeleton_produce_no_answers() {
        let (schema, sk) = setup();
        for q in [
            ConjunctiveQuery::new(vec![Atom::new(
                "Author",
                vec![Term::var("A"), Term::constant("ghost")],
            )]),
            ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::constant("ghost")])]),
        ] {
            assert!(evaluate(&schema, &sk, &q).unwrap().is_empty(), "{q}");
            assert!(evaluate_naive(&schema, &sk, &q).unwrap().is_empty(), "{q}");
        }
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let (schema, sk) = setup();
        // Author(A, S), Author(A, S) must not blow up the answer count.
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
        ]);
        let answers = evaluate(&schema, &sk, &q).unwrap();
        assert_eq!(answers.len(), 5);
    }

    #[test]
    fn coauthor_join() {
        let (schema, sk) = setup();
        // Pairs (A, B) of authors sharing a submission, including A = B.
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Author", vec![Term::var("B"), Term::var("S")]),
        ]);
        let answers = evaluate(&schema, &sk, &q).unwrap();
        // s1: {Bob,Eva}² = 4, s2: {Eva}² = 1, s3: {Eva,Carlos}² = 4 → 9
        assert_eq!(answers.len(), 9);
    }

    #[test]
    fn projection_deduplicates() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Author", vec![Term::var("B"), Term::var("S")]),
        ]);
        let rows = evaluate_project(&schema, &sk, &q, &["A".to_string()]).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn unknown_predicate_and_bad_arity_error() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![Atom::new("Nope", vec![Term::var("X")])]);
        assert!(matches!(
            evaluate(&schema, &sk, &q),
            Err(RelError::UnknownPredicate(_))
        ));
        assert!(matches!(
            evaluate_naive(&schema, &sk, &q),
            Err(RelError::UnknownPredicate(_))
        ));
        let q = ConjunctiveQuery::new(vec![Atom::new("Author", vec![Term::var("X")])]);
        assert!(matches!(
            evaluate(&schema, &sk, &q),
            Err(RelError::ArityMismatch { .. })
        ));
        assert!(matches!(
            evaluate_naive(&schema, &sk, &q),
            Err(RelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn unbound_projection_variable_errors() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let err = evaluate_project(&schema, &sk, &q, &["Z".to_string()]).unwrap_err();
        assert!(matches!(err, RelError::MalformedQuery(_)));
    }

    /// Collect a streamed evaluation back into (bindings, batch count) so
    /// it can be compared against the materialised executor.
    fn collect_chunked(
        inst: &Instance,
        q: &ConjunctiveQuery,
        filters: &[EqFilter],
    ) -> (Vec<Bindings>, usize) {
        let cache = IndexCache::for_instance(inst);
        let mut all = Vec::new();
        let mut batches = 0usize;
        evaluate_tuples_filtered_chunked(&cache, inst.schema(), inst, q, filters, &mut |batch| {
            batches += 1;
            assert!(!batch.is_empty(), "empty batches are never delivered");
            all.extend(batch.to_bindings());
            Ok(())
        })
        .unwrap();
        (all, batches)
    }

    #[test]
    fn chunked_evaluation_streams_the_materialised_answers_in_order() {
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let queries = [
            ConjunctiveQuery::truth(),
            ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]),
            ConjunctiveQuery::new(vec![
                Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
                Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
            ]),
            ConjunctiveQuery::new(vec![
                Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
                Atom::new("Author", vec![Term::var("B"), Term::var("S")]),
            ]),
            // No answers at all: the sink must never be called.
            ConjunctiveQuery::new(vec![Atom::new(
                "Author",
                vec![Term::var("A"), Term::constant("ghost")],
            )]),
        ];
        for q in &queries {
            let materialised =
                evaluate_tuples_filtered(&cache, inst.schema(), &inst, q, &[]).unwrap();
            let (streamed, batches) = collect_chunked(&inst, q, &[]);
            // Same rows in the same order (order matters: streaming sinks
            // fold rows without re-sorting).
            let expected = materialised.to_bindings();
            assert_eq!(streamed.len(), expected.len(), "query {q}");
            for (i, (a, b)) in streamed.iter().zip(&expected).enumerate() {
                assert_eq!(a, b, "query {q}, row {i}");
            }
            if expected.is_empty() {
                assert_eq!(batches, 0, "query {q}");
            }
        }
    }

    #[test]
    fn chunked_evaluation_applies_final_step_filters() {
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
        ]);
        let filters = vec![EqFilter {
            attr: "Blind".into(),
            args: vec![Term::var("C")],
            value: Value::Bool(true),
        }];
        let materialised =
            evaluate_tuples_filtered(&cache, inst.schema(), &inst, &q, &filters).unwrap();
        let (streamed, _) = collect_chunked(&inst, &q, &filters);
        assert_eq!(streamed, materialised.to_bindings());
        assert_eq!(streamed.len(), 3);
    }

    #[test]
    fn chunked_evaluation_propagates_sink_errors() {
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let err = evaluate_tuples_filtered_chunked(
            &cache,
            inst.schema(),
            &inst,
            &q,
            &[],
            &mut |_batch| Err(RelError::MalformedQuery("sink aborted".into())),
        )
        .unwrap_err();
        assert!(matches!(err, RelError::MalformedQuery(_)));
    }

    #[test]
    fn planned_matches_naive_on_the_paper_example() {
        let (schema, sk) = setup();
        let cache = IndexCache::for_skeleton(&sk);
        for q in [
            ConjunctiveQuery::truth(),
            ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]),
            ConjunctiveQuery::new(vec![
                Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
                Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
                Atom::new("Person", vec![Term::var("A")]),
            ]),
            ConjunctiveQuery::new(vec![
                Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
                Atom::new("Author", vec![Term::var("B"), Term::var("S")]),
            ]),
        ] {
            let fast = evaluate(&schema, &sk, &q).unwrap();
            let slow = evaluate_naive(&schema, &sk, &q).unwrap();
            assert_eq!(canonical(fast), canonical(slow), "query {q}");
            // The preserved bindings executor stays honest too.
            let legacy = evaluate_bindings_in(&cache, &schema, &sk, &q).unwrap();
            let slow = evaluate_naive(&schema, &sk, &q).unwrap();
            assert_eq!(canonical(legacy), canonical(slow), "query {q}");
        }
    }

    #[test]
    fn shared_cache_reuse_is_consistent() {
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Author", vec![Term::var("A"), Term::var("T")]),
            Atom::new("Submitted", vec![Term::var("T"), Term::var("C")]),
        ]);
        let first = evaluate_in(&cache, inst.schema(), inst.skeleton(), &q).unwrap();
        let second = evaluate_in(&cache, inst.schema(), inst.skeleton(), &q).unwrap();
        assert_eq!(canonical(first.clone()), canonical(second));
        let fresh = evaluate(inst.schema(), inst.skeleton(), &q).unwrap();
        assert_eq!(canonical(first), canonical(fresh));
    }

    #[test]
    fn filtered_evaluation_matches_post_hoc_filtering() {
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
        ]);
        let filters = vec![EqFilter {
            attr: "Blind".into(),
            args: vec![Term::var("C")],
            value: Value::Bool(true),
        }];
        let filtered = evaluate_filtered(&cache, inst.schema(), &inst, &q, &filters).unwrap();
        let post: Vec<Bindings> = evaluate(inst.schema(), inst.skeleton(), &q)
            .unwrap()
            .into_iter()
            .filter(|b| {
                inst.attribute("Blind", std::slice::from_ref(&b["C"])) == Some(&Value::Bool(true))
            })
            .collect();
        // s2 and s3 are at the double-blind ConfAI: three authorships.
        assert_eq!(filtered.len(), 3);
        assert_eq!(canonical(filtered), canonical(post));
        // The preserved bindings executor agrees.
        let legacy =
            evaluate_bindings_filtered(&cache, inst.schema(), &inst, &q, &filters).unwrap();
        let post: Vec<Bindings> = evaluate(inst.schema(), inst.skeleton(), &q)
            .unwrap()
            .into_iter()
            .filter(|b| {
                inst.attribute("Blind", std::slice::from_ref(&b["C"])) == Some(&Value::Bool(true))
            })
            .collect();
        assert_eq!(canonical(legacy), canonical(post));
    }

    #[test]
    fn filters_on_unbound_variables_empty_the_result() {
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let filters = vec![EqFilter {
            attr: "Blind".into(),
            args: vec![Term::var("Z")],
            value: Value::Bool(true),
        }];
        let answers = evaluate_filtered(&cache, inst.schema(), &inst, &q, &filters).unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn constant_only_filters_gate_the_whole_query() {
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let hold = vec![EqFilter {
            attr: "Blind".into(),
            args: vec![Term::constant("ConfAI")],
            value: Value::Bool(true),
        }];
        assert_eq!(
            evaluate_filtered(&cache, inst.schema(), &inst, &q, &hold)
                .unwrap()
                .len(),
            3
        );
        let fail = vec![EqFilter {
            attr: "Blind".into(),
            args: vec![Term::constant("ConfAI")],
            value: Value::Bool(false),
        }];
        assert!(evaluate_filtered(&cache, inst.schema(), &inst, &q, &fail)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn arity_violating_tuples_do_not_panic_the_executor() {
        // The raw `Skeleton` API does not enforce arity; tuples shorter
        // than the schema arity must be handled like the naive evaluator
        // handles them (they unify with nothing) instead of panicking in
        // index construction or semi-join pruning.
        let schema = RelationalSchema::review_example();
        let mut sk = Skeleton::new();
        sk.add_entity("Person", Value::from("Bob"));
        sk.add_entity("Submission", Value::from("s1"));
        sk.add_relationship("Author", vec![Value::from("Bob")]); // too short
        sk.add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")]);
        sk.add_relationship("Submitted", vec![Value::from("s1")]); // too short
        for q in [
            // Two bound positions: composite-index probe.
            ConjunctiveQuery::new(vec![Atom::new(
                "Author",
                vec![Term::constant("Bob"), Term::constant("s1")],
            )]),
            // Scan with semi-join pruning over the short tuple.
            ConjunctiveQuery::new(vec![
                Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
                Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
            ]),
        ] {
            let fast = evaluate(&schema, &sk, &q).unwrap();
            let slow = evaluate_naive(&schema, &sk, &q).unwrap();
            assert_eq!(canonical(fast), canonical(slow), "query {q}");
        }
    }

    #[test]
    fn attribute_fetch_ignores_assignments_for_missing_units() {
        // set_attribute does not require the unit to exist in the skeleton;
        // an attribute-index fetch must not resurrect such phantom units.
        let mut inst = Instance::review_example();
        inst.set_attribute("Prestige", &[Value::from("Ghost")], Value::Int(0))
            .unwrap();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let filters = vec![EqFilter {
            attr: "Prestige".into(),
            args: vec![Term::var("A")],
            value: Value::Int(0),
        }];
        let answers = evaluate_filtered(&cache, inst.schema(), &inst, &q, &filters).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0]["A"], Value::from("Carlos"));
    }

    #[test]
    fn filters_with_constant_args_match_assignments_beyond_the_skeleton() {
        // A filter whose constant argument names a unit outside the
        // skeleton still consults the instance's assignments, exactly as
        // per-binding post-filtering would.
        let mut inst = Instance::review_example();
        inst.set_attribute("Blind", &[Value::from("GhostConf")], Value::Bool(true))
            .unwrap();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let filters = vec![EqFilter {
            attr: "Blind".into(),
            args: vec![Term::constant("GhostConf")],
            value: Value::Bool(true),
        }];
        let answers = evaluate_filtered(&cache, inst.schema(), &inst, &q, &filters).unwrap();
        assert_eq!(answers.len(), 3, "constant-only filter holds for Ghost");
    }
}
