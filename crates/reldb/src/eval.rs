//! Conjunctive-query evaluation over relational skeletons.
//!
//! The evaluator computes the set of substitutions (variable bindings) that
//! satisfy a [`ConjunctiveQuery`] in a [`Skeleton`]. It is used to ground
//! relational causal rules (Definition 3.5): for a rule with condition
//! `Q(Y)`, every answer of `Q` over the skeleton yields one grounded rule.
//!
//! Evaluation is planned: [`crate::plan`] chooses a most-selective-first
//! join order, an access path per atom (scan, positional hash probe, or
//! attribute-index fetch) and semi-join pruning passes; the executor here
//! runs the plan, probing the skeleton's positional indexes and the
//! lazily built composite indexes of an [`IndexCache`] instead of scanning
//! candidates per partial binding.
//!
//! [`evaluate_naive`] is the deliberately unoptimised nested-loop reference
//! evaluator (atoms in source order, full scans only). It defines the
//! semantics; the planned executor must agree with it on every query, which
//! the differential fuzzer in `tests/eval_reference.rs` enforces.

use crate::error::{RelError, RelResult};
use crate::index::IndexCache;
use crate::instance::Instance;
use crate::plan::{plan_query, plan_query_filtered, Access, EqFilter, Plan, SemiJoin};
use crate::query::{ConjunctiveQuery, Term};
use crate::schema::{PredicateKind, RelationalSchema};
use crate::skeleton::Skeleton;
use crate::value::Value;
use std::collections::HashMap;

/// A substitution binding variable names to values.
pub type Bindings = HashMap<String, Value>;

/// Evaluate `query` over `skeleton`, returning all satisfying substitutions.
///
/// The result binds exactly the variables appearing in the query. An empty
/// query returns a single empty binding (the query `true`). Indexes built
/// for the evaluation are discarded afterwards; use [`evaluate_in`] with a
/// shared [`IndexCache`] to reuse them across queries.
pub fn evaluate(
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
) -> RelResult<Vec<Bindings>> {
    let cache = IndexCache::with_fingerprint(0);
    evaluate_in(&cache, schema, skeleton, query)
}

/// Evaluate `query` over `skeleton`, reusing (and lazily extending) the
/// secondary indexes in `cache`.
///
/// The caller is responsible for cache validity: the cache must have been
/// created for (or revalidated against) the skeleton's current content.
pub fn evaluate_in(
    cache: &IndexCache,
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
) -> RelResult<Vec<Bindings>> {
    let plan = plan_query(schema, skeleton, query)?;
    Ok(execute(&plan, schema, skeleton, None, cache))
}

/// Evaluate `query` with equality `filters` over a full instance.
///
/// Filters implement CaRL's attribute equality comparisons natively: a
/// binding survives iff every filter's arguments resolve and the instance
/// assigns exactly the required value. Selective filters are pushed into
/// the plan (attribute-index fetches replace scans); the rest are applied
/// at the earliest step where their variables are bound. A filter whose
/// variables the query never binds makes the result empty, matching the
/// semantics of comparison post-filtering.
pub fn evaluate_filtered(
    cache: &IndexCache,
    schema: &RelationalSchema,
    instance: &Instance,
    query: &ConjunctiveQuery,
    filters: &[EqFilter],
) -> RelResult<Vec<Bindings>> {
    let plan = plan_query_filtered(schema, instance, cache, query, filters)?;
    Ok(execute(
        &plan,
        schema,
        instance.skeleton(),
        Some(instance),
        cache,
    ))
}

/// Nested-loop reference evaluation: atoms in the order given, full scans
/// only, no indexes, no reordering.
///
/// This is the semantic baseline the planned evaluator is differentially
/// tested against, and the "naive" side of the grounding-scale benchmark.
pub fn evaluate_naive(
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
) -> RelResult<Vec<Bindings>> {
    // The exact validation the planner runs, shared so the two paths can
    // never diverge on which queries they reject.
    crate::plan::validate(schema, query)?;
    let mut partials: Vec<Bindings> = vec![Bindings::new()];
    for atom in &query.atoms {
        let mut next: Vec<Bindings> = Vec::new();
        for binding in &partials {
            match schema.predicate_kind(&atom.predicate) {
                Some(PredicateKind::Entity) => {
                    for key in skeleton.entity_keys(&atom.predicate) {
                        if let Some(ext) = unify(binding, &atom.terms, std::slice::from_ref(key)) {
                            next.push(ext);
                        }
                    }
                }
                Some(PredicateKind::Relationship) => {
                    for tuple in skeleton.relationship_tuples(&atom.predicate) {
                        if let Some(ext) = unify(binding, &atom.terms, tuple) {
                            next.push(ext);
                        }
                    }
                }
                None => {}
            }
        }
        partials = next;
    }
    Ok(partials)
}

/// Evaluate the query and project the answers onto `vars` (in order),
/// deduplicating projected rows.
pub fn evaluate_project(
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
    vars: &[String],
) -> RelResult<Vec<Vec<Value>>> {
    let answers = evaluate(schema, skeleton, query)?;
    let mut seen = std::collections::HashSet::new();
    let mut rows = Vec::new();
    for b in answers {
        let mut row = Vec::with_capacity(vars.len());
        let mut ok = true;
        for v in vars {
            match b.get(v) {
                Some(val) => row.push(val.clone()),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            return Err(RelError::MalformedQuery(format!(
                "projection variable not bound by query: {vars:?}"
            )));
        }
        let key: Vec<String> = row.iter().map(Value::key_repr).collect();
        if seen.insert(key) {
            rows.push(row);
        }
    }
    Ok(rows)
}

/// Run a plan against a skeleton (and, when filters are present, the
/// instance carrying the attribute assignments they consult).
fn execute(
    plan: &Plan,
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    instance: Option<&Instance>,
    cache: &IndexCache,
) -> Vec<Bindings> {
    if plan.unsatisfiable() {
        return Vec::new();
    }
    let mut partials: Vec<Bindings> = vec![Bindings::new()];
    apply_filters(plan, 0, instance, &mut partials);

    for (i, step) in plan.steps.iter().enumerate() {
        if partials.is_empty() {
            break;
        }
        let atom = &step.atom;
        let mut next: Vec<Bindings> = Vec::new();
        match &step.access {
            Access::ScanEntity => {
                let keys: Vec<&Value> = skeleton
                    .entity_keys(&atom.predicate)
                    .iter()
                    .filter(|key| semijoins_admit(skeleton, &step.semijoins, |_| *key))
                    .collect();
                for binding in &partials {
                    for key in &keys {
                        if let Some(ext) = unify(binding, &atom.terms, std::slice::from_ref(*key)) {
                            next.push(ext);
                        }
                    }
                }
            }
            Access::ProbeEntity => {
                for binding in &partials {
                    let key = resolve(&atom.terms[0], binding)
                        .expect("planner chose a probe because the term is bound");
                    if skeleton.has_entity(&atom.predicate, &key) {
                        next.push(binding.clone());
                    }
                }
            }
            Access::ScanRelationship => {
                // Arity-violating tuples (possible via the raw `Skeleton`
                // API) can never unify; drop them before the semi-join
                // passes index into them.
                let tuples: Vec<&Vec<Value>> = skeleton
                    .relationship_tuples(&atom.predicate)
                    .iter()
                    .filter(|t| t.len() == atom.terms.len())
                    .filter(|t| semijoins_admit(skeleton, &step.semijoins, |p| &t[p]))
                    .collect();
                for binding in &partials {
                    for tuple in &tuples {
                        if let Some(ext) = unify(binding, &atom.terms, tuple) {
                            next.push(ext);
                        }
                    }
                }
            }
            Access::ProbeRelationship { positions } => {
                if let [position] = positions.as_slice() {
                    // Single-position probes use the skeleton's eagerly
                    // maintained index directly.
                    for binding in &partials {
                        let key = resolve(&atom.terms[*position], binding)
                            .expect("planner chose the position because it is bound");
                        for tuple in
                            skeleton.relationship_tuples_with(&atom.predicate, *position, &key)
                        {
                            if let Some(ext) = unify(binding, &atom.terms, tuple) {
                                next.push(ext);
                            }
                        }
                    }
                } else {
                    let index = cache.relationship_index(skeleton, &atom.predicate, positions);
                    let table = skeleton.relationship_tuples(&atom.predicate);
                    for binding in &partials {
                        let key: Vec<Value> = positions
                            .iter()
                            .map(|&p| {
                                resolve(&atom.terms[p], binding)
                                    .expect("planner chose the position because it is bound")
                            })
                            .collect();
                        for &row in index.rows(&key) {
                            if let Some(ext) = unify(binding, &atom.terms, &table[row]) {
                                next.push(ext);
                            }
                        }
                    }
                }
            }
            Access::ProbeAttribute { filter } => {
                let inst = instance
                    .expect("planner only emits attribute fetches when an instance is available");
                let flt = &plan.filters[*filter];
                let index = cache.attribute_index(inst, &flt.attr);
                // Attribute assignments are not guaranteed to reference
                // existing units, so intersect with the skeleton.
                let units: Vec<&Vec<Value>> = index
                    .units(&flt.value)
                    .iter()
                    .filter(|unit| match schema.predicate_kind(&atom.predicate) {
                        Some(PredicateKind::Entity) => {
                            unit.len() == 1 && skeleton.has_entity(&atom.predicate, &unit[0])
                        }
                        Some(PredicateKind::Relationship) => {
                            skeleton.has_relationship(&atom.predicate, unit)
                        }
                        None => false,
                    })
                    .collect();
                for binding in &partials {
                    for unit in &units {
                        if let Some(ext) = unify(binding, &atom.terms, unit) {
                            next.push(ext);
                        }
                    }
                }
            }
        }
        partials = next;
        apply_filters(plan, i + 1, instance, &mut partials);
    }
    partials
}

/// Retain only bindings satisfying every filter pinned to step `after`.
fn apply_filters(
    plan: &Plan,
    after: usize,
    instance: Option<&Instance>,
    partials: &mut Vec<Bindings>,
) {
    for (flt, ready) in plan.filters.iter().zip(&plan.filter_after) {
        if *ready != Some(after) {
            continue;
        }
        let Some(instance) = instance else {
            partials.clear();
            return;
        };
        partials.retain(|binding| filter_holds(flt, binding, instance));
    }
}

/// Whether a binding satisfies an equality filter (missing assignments
/// never satisfy).
fn filter_holds(filter: &EqFilter, binding: &Bindings, instance: &Instance) -> bool {
    let key: Option<Vec<Value>> = filter.args.iter().map(|t| resolve(t, binding)).collect();
    match key {
        Some(key) => instance.attribute(&filter.attr, &key) == Some(&filter.value),
        None => false,
    }
}

/// Whether a candidate passes every semi-join pass; `value_at` maps a
/// pruned position to the candidate's value there.
fn semijoins_admit<'a>(
    skeleton: &Skeleton,
    semijoins: &[SemiJoin],
    value_at: impl Fn(usize) -> &'a Value,
) -> bool {
    semijoins.iter().all(|sj| {
        let value = value_at(sj.position);
        match sj.source_kind {
            PredicateKind::Entity => skeleton.has_entity(&sj.source_predicate, value),
            PredicateKind::Relationship => {
                skeleton.contains_at(&sj.source_predicate, sj.source_position, value)
            }
        }
    })
}

/// Unify an atom's terms with a concrete tuple under `binding`, returning
/// the extended binding on success. Handles constants, already-bound
/// variables and repeated variables within the atom.
fn unify(binding: &Bindings, terms: &[Term], tuple: &[Value]) -> Option<Bindings> {
    if terms.len() != tuple.len() {
        return None;
    }
    let mut extended = binding.clone();
    for (term, value) in terms.iter().zip(tuple) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => match extended.get(v) {
                Some(bound) if bound != value => return None,
                Some(_) => {}
                None => {
                    extended.insert(v.clone(), value.clone());
                }
            },
        }
    }
    Some(extended)
}

/// Resolve a term to a value given the current binding, if possible.
fn resolve(term: &Term, binding: &Bindings) -> Option<Value> {
    match term {
        Term::Const(v) => Some(v.clone()),
        Term::Var(name) => binding.get(name).cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::query::{Atom, ConjunctiveQuery, Term};

    fn setup() -> (RelationalSchema, Skeleton) {
        let inst = Instance::review_example();
        (inst.schema().clone(), inst.skeleton().clone())
    }

    /// Canonicalise for multiset comparison.
    fn canonical(bindings: Vec<Bindings>) -> Vec<Vec<(String, String)>> {
        let mut rows: Vec<Vec<(String, String)>> = bindings
            .into_iter()
            .map(|b| {
                let mut row: Vec<(String, String)> =
                    b.into_iter().map(|(k, v)| (k, v.key_repr())).collect();
                row.sort();
                row
            })
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn empty_query_has_one_empty_answer() {
        let (schema, sk) = setup();
        let answers = evaluate(&schema, &sk, &ConjunctiveQuery::truth()).unwrap();
        assert_eq!(answers.len(), 1);
        assert!(answers[0].is_empty());
    }

    #[test]
    fn single_entity_atom_enumerates_keys() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let answers = evaluate(&schema, &sk, &q).unwrap();
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn relationship_join_matches_paper_example() {
        let (schema, sk) = setup();
        // Author(A, S), Submitted(S, C): one answer per authorship (5).
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
        ]);
        let answers = evaluate(&schema, &sk, &q).unwrap();
        assert_eq!(answers.len(), 5);
        // Every answer binds all three variables.
        assert!(answers.iter().all(|b| b.len() == 3));
    }

    #[test]
    fn constants_select() {
        let (schema, sk) = setup();
        // Who authored s3?
        let q = ConjunctiveQuery::new(vec![Atom::new(
            "Author",
            vec![Term::var("A"), Term::constant("s3")],
        )]);
        let mut authors: Vec<String> = evaluate(&schema, &sk, &q)
            .unwrap()
            .into_iter()
            .map(|b| b["A"].to_string())
            .collect();
        authors.sort();
        assert_eq!(authors, vec!["Carlos".to_string(), "Eva".to_string()]);
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let (schema, sk) = setup();
        // Author(A, S), Author(A, S) must not blow up the answer count.
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
        ]);
        let answers = evaluate(&schema, &sk, &q).unwrap();
        assert_eq!(answers.len(), 5);
    }

    #[test]
    fn coauthor_join() {
        let (schema, sk) = setup();
        // Pairs (A, B) of authors sharing a submission, including A = B.
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Author", vec![Term::var("B"), Term::var("S")]),
        ]);
        let answers = evaluate(&schema, &sk, &q).unwrap();
        // s1: {Bob,Eva}² = 4, s2: {Eva}² = 1, s3: {Eva,Carlos}² = 4 → 9
        assert_eq!(answers.len(), 9);
    }

    #[test]
    fn projection_deduplicates() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Author", vec![Term::var("B"), Term::var("S")]),
        ]);
        let rows = evaluate_project(&schema, &sk, &q, &["A".to_string()]).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn unknown_predicate_and_bad_arity_error() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![Atom::new("Nope", vec![Term::var("X")])]);
        assert!(matches!(
            evaluate(&schema, &sk, &q),
            Err(RelError::UnknownPredicate(_))
        ));
        assert!(matches!(
            evaluate_naive(&schema, &sk, &q),
            Err(RelError::UnknownPredicate(_))
        ));
        let q = ConjunctiveQuery::new(vec![Atom::new("Author", vec![Term::var("X")])]);
        assert!(matches!(
            evaluate(&schema, &sk, &q),
            Err(RelError::ArityMismatch { .. })
        ));
        assert!(matches!(
            evaluate_naive(&schema, &sk, &q),
            Err(RelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn unbound_projection_variable_errors() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let err = evaluate_project(&schema, &sk, &q, &["Z".to_string()]).unwrap_err();
        assert!(matches!(err, RelError::MalformedQuery(_)));
    }

    #[test]
    fn planned_matches_naive_on_the_paper_example() {
        let (schema, sk) = setup();
        for q in [
            ConjunctiveQuery::truth(),
            ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]),
            ConjunctiveQuery::new(vec![
                Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
                Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
                Atom::new("Person", vec![Term::var("A")]),
            ]),
            ConjunctiveQuery::new(vec![
                Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
                Atom::new("Author", vec![Term::var("B"), Term::var("S")]),
            ]),
        ] {
            let fast = evaluate(&schema, &sk, &q).unwrap();
            let slow = evaluate_naive(&schema, &sk, &q).unwrap();
            assert_eq!(canonical(fast), canonical(slow), "query {q}");
        }
    }

    #[test]
    fn shared_cache_reuse_is_consistent() {
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Author", vec![Term::var("A"), Term::var("T")]),
            Atom::new("Submitted", vec![Term::var("T"), Term::var("C")]),
        ]);
        let first = evaluate_in(&cache, inst.schema(), inst.skeleton(), &q).unwrap();
        let second = evaluate_in(&cache, inst.schema(), inst.skeleton(), &q).unwrap();
        assert_eq!(canonical(first.clone()), canonical(second));
        let fresh = evaluate(inst.schema(), inst.skeleton(), &q).unwrap();
        assert_eq!(canonical(first), canonical(fresh));
    }

    #[test]
    fn filtered_evaluation_matches_post_hoc_filtering() {
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
        ]);
        let filters = vec![EqFilter {
            attr: "Blind".into(),
            args: vec![Term::var("C")],
            value: Value::Bool(true),
        }];
        let filtered = evaluate_filtered(&cache, inst.schema(), &inst, &q, &filters).unwrap();
        let post: Vec<Bindings> = evaluate(inst.schema(), inst.skeleton(), &q)
            .unwrap()
            .into_iter()
            .filter(|b| {
                inst.attribute("Blind", std::slice::from_ref(&b["C"])) == Some(&Value::Bool(true))
            })
            .collect();
        // s2 and s3 are at the double-blind ConfAI: three authorships.
        assert_eq!(filtered.len(), 3);
        assert_eq!(canonical(filtered), canonical(post));
    }

    #[test]
    fn filters_on_unbound_variables_empty_the_result() {
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let filters = vec![EqFilter {
            attr: "Blind".into(),
            args: vec![Term::var("Z")],
            value: Value::Bool(true),
        }];
        let answers = evaluate_filtered(&cache, inst.schema(), &inst, &q, &filters).unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn constant_only_filters_gate_the_whole_query() {
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let hold = vec![EqFilter {
            attr: "Blind".into(),
            args: vec![Term::constant("ConfAI")],
            value: Value::Bool(true),
        }];
        assert_eq!(
            evaluate_filtered(&cache, inst.schema(), &inst, &q, &hold)
                .unwrap()
                .len(),
            3
        );
        let fail = vec![EqFilter {
            attr: "Blind".into(),
            args: vec![Term::constant("ConfAI")],
            value: Value::Bool(false),
        }];
        assert!(evaluate_filtered(&cache, inst.schema(), &inst, &q, &fail)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn arity_violating_tuples_do_not_panic_the_executor() {
        // The raw `Skeleton` API does not enforce arity; tuples shorter
        // than the schema arity must be handled like the naive evaluator
        // handles them (they unify with nothing) instead of panicking in
        // index construction or semi-join pruning.
        let schema = RelationalSchema::review_example();
        let mut sk = Skeleton::new();
        sk.add_entity("Person", Value::from("Bob"));
        sk.add_entity("Submission", Value::from("s1"));
        sk.add_relationship("Author", vec![Value::from("Bob")]); // too short
        sk.add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")]);
        sk.add_relationship("Submitted", vec![Value::from("s1")]); // too short
        for q in [
            // Two bound positions: composite-index probe.
            ConjunctiveQuery::new(vec![Atom::new(
                "Author",
                vec![Term::constant("Bob"), Term::constant("s1")],
            )]),
            // Scan with semi-join pruning over the short tuple.
            ConjunctiveQuery::new(vec![
                Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
                Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
            ]),
        ] {
            let fast = evaluate(&schema, &sk, &q).unwrap();
            let slow = evaluate_naive(&schema, &sk, &q).unwrap();
            assert_eq!(canonical(fast), canonical(slow), "query {q}");
        }
    }

    #[test]
    fn attribute_fetch_ignores_assignments_for_missing_units() {
        // set_attribute does not require the unit to exist in the skeleton;
        // an attribute-index fetch must not resurrect such phantom units.
        let mut inst = Instance::review_example();
        inst.set_attribute("Prestige", &[Value::from("Ghost")], Value::Int(0))
            .unwrap();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let filters = vec![EqFilter {
            attr: "Prestige".into(),
            args: vec![Term::var("A")],
            value: Value::Int(0),
        }];
        let answers = evaluate_filtered(&cache, inst.schema(), &inst, &q, &filters).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0]["A"], Value::from("Carlos"));
    }
}
