//! Conjunctive-query evaluation over relational skeletons.
//!
//! The evaluator computes the set of substitutions (variable bindings) that
//! satisfy a [`ConjunctiveQuery`] in a [`Skeleton`]. It is used to ground
//! relational causal rules (Definition 3.5): for a rule with condition
//! `Q(Y)`, every answer of `Q` over the skeleton yields one grounded rule.
//!
//! The algorithm is index-accelerated sideways information passing: atoms
//! are evaluated one at a time, most-selective-first, and each partial
//! binding is extended using the skeleton's positional hash indexes.

use crate::error::{RelError, RelResult};
use crate::query::{Atom, ConjunctiveQuery, Term};
use crate::schema::{PredicateKind, RelationalSchema};
use crate::skeleton::Skeleton;
use crate::value::Value;
use std::collections::HashMap;

/// A substitution binding variable names to values.
pub type Bindings = HashMap<String, Value>;

/// Evaluate `query` over `skeleton`, returning all satisfying substitutions.
///
/// The result binds exactly the variables appearing in the query. An empty
/// query returns a single empty binding (the query `true`).
pub fn evaluate(
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
) -> RelResult<Vec<Bindings>> {
    // Validate predicates and arities up front for better error messages.
    for atom in &query.atoms {
        let arity = schema
            .predicate_arity(&atom.predicate)
            .ok_or_else(|| RelError::UnknownPredicate(atom.predicate.clone()))?;
        if atom.terms.len() != arity {
            return Err(RelError::ArityMismatch {
                predicate: atom.predicate.clone(),
                expected: arity,
                actual: atom.terms.len(),
            });
        }
    }

    // Order atoms by estimated cardinality (cheapest first) so that the
    // intermediate result stays small; constants make an atom cheaper.
    let mut atoms: Vec<&Atom> = query.atoms.iter().collect();
    atoms.sort_by_key(|a| {
        let base = match schema.predicate_kind(&a.predicate) {
            Some(PredicateKind::Entity) => skeleton.entity_count(&a.predicate),
            Some(PredicateKind::Relationship) => skeleton.relationship_count(&a.predicate),
            None => usize::MAX,
        };
        let constants = a.terms.iter().filter(|t| matches!(t, Term::Const(_))).count();
        // Heavily discount atoms with constants: they are typically selective.
        base / (1 + constants * 8)
    });

    let mut partials: Vec<Bindings> = vec![Bindings::new()];
    for atom in atoms {
        let mut next: Vec<Bindings> = Vec::new();
        for binding in &partials {
            extend_with_atom(schema, skeleton, atom, binding, &mut next);
        }
        partials = next;
        if partials.is_empty() {
            break;
        }
    }
    Ok(partials)
}

/// Evaluate the query and project the answers onto `vars` (in order),
/// deduplicating projected rows.
pub fn evaluate_project(
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
    vars: &[String],
) -> RelResult<Vec<Vec<Value>>> {
    let answers = evaluate(schema, skeleton, query)?;
    let mut seen = std::collections::HashSet::new();
    let mut rows = Vec::new();
    for b in answers {
        let mut row = Vec::with_capacity(vars.len());
        let mut ok = true;
        for v in vars {
            match b.get(v) {
                Some(val) => row.push(val.clone()),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            return Err(RelError::MalformedQuery(format!(
                "projection variable not bound by query: {vars:?}"
            )));
        }
        let key: Vec<String> = row.iter().map(Value::key_repr).collect();
        if seen.insert(key) {
            rows.push(row);
        }
    }
    Ok(rows)
}

/// Extend a single partial binding with all matches of `atom`.
fn extend_with_atom(
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    atom: &Atom,
    binding: &Bindings,
    out: &mut Vec<Bindings>,
) {
    match schema.predicate_kind(&atom.predicate) {
        Some(PredicateKind::Entity) => {
            let term = &atom.terms[0];
            match resolved(term, binding) {
                Some(v) => {
                    if skeleton.has_entity(&atom.predicate, &v) {
                        out.push(binding.clone());
                    }
                }
                None => {
                    let var = term.as_var().expect("unresolved term must be a variable");
                    for key in skeleton.entity_keys(&atom.predicate) {
                        let mut b = binding.clone();
                        b.insert(var.to_string(), key.clone());
                        out.push(b);
                    }
                }
            }
        }
        Some(PredicateKind::Relationship) => {
            // Pick the first already-resolved position to use the index;
            // otherwise scan all tuples.
            let resolved_terms: Vec<Option<Value>> =
                atom.terms.iter().map(|t| resolved(t, binding)).collect();
            let probe = resolved_terms.iter().position(Option::is_some);
            let candidates: Vec<&Vec<Value>> = match probe {
                Some(pos) => skeleton.relationship_tuples_with(
                    &atom.predicate,
                    pos,
                    resolved_terms[pos].as_ref().expect("position chosen because resolved"),
                ),
                None => skeleton.relationship_tuples(&atom.predicate).iter().collect(),
            };
            'tuple: for tuple in candidates {
                let mut b = binding.clone();
                for (term, (resolved_v, tuple_v)) in atom
                    .terms
                    .iter()
                    .zip(resolved_terms.iter().zip(tuple.iter()))
                {
                    match resolved_v {
                        Some(v) => {
                            if v != tuple_v {
                                continue 'tuple;
                            }
                        }
                        None => {
                            let var = term.as_var().expect("unresolved term must be a variable");
                            match b.get(var) {
                                Some(existing) if existing != tuple_v => continue 'tuple,
                                Some(_) => {}
                                None => {
                                    b.insert(var.to_string(), tuple_v.clone());
                                }
                            }
                        }
                    }
                }
                out.push(b);
            }
        }
        None => {}
    }
}

/// Resolve a term to a value given the current binding, if possible.
fn resolved(term: &Term, binding: &Bindings) -> Option<Value> {
    match term {
        Term::Const(v) => Some(v.clone()),
        Term::Var(name) => binding.get(name).cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::query::{Atom, ConjunctiveQuery, Term};

    fn setup() -> (RelationalSchema, Skeleton) {
        let inst = Instance::review_example();
        (inst.schema().clone(), inst.skeleton().clone())
    }

    #[test]
    fn empty_query_has_one_empty_answer() {
        let (schema, sk) = setup();
        let answers = evaluate(&schema, &sk, &ConjunctiveQuery::truth()).unwrap();
        assert_eq!(answers.len(), 1);
        assert!(answers[0].is_empty());
    }

    #[test]
    fn single_entity_atom_enumerates_keys() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let answers = evaluate(&schema, &sk, &q).unwrap();
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn relationship_join_matches_paper_example() {
        let (schema, sk) = setup();
        // Author(A, S), Submitted(S, C): one answer per authorship (5).
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
        ]);
        let answers = evaluate(&schema, &sk, &q).unwrap();
        assert_eq!(answers.len(), 5);
        // Every answer binds all three variables.
        assert!(answers.iter().all(|b| b.len() == 3));
    }

    #[test]
    fn constants_select() {
        let (schema, sk) = setup();
        // Who authored s3?
        let q = ConjunctiveQuery::new(vec![Atom::new(
            "Author",
            vec![Term::var("A"), Term::constant("s3")],
        )]);
        let mut authors: Vec<String> = evaluate(&schema, &sk, &q)
            .unwrap()
            .into_iter()
            .map(|b| b["A"].to_string())
            .collect();
        authors.sort();
        assert_eq!(authors, vec!["Carlos".to_string(), "Eva".to_string()]);
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let (schema, sk) = setup();
        // Author(A, S), Author(B, S), A != B is not expressible, but
        // Author(A, S), Author(A, S) must not blow up the answer count.
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
        ]);
        let answers = evaluate(&schema, &sk, &q).unwrap();
        assert_eq!(answers.len(), 5);
    }

    #[test]
    fn coauthor_join() {
        let (schema, sk) = setup();
        // Pairs (A, B) of authors sharing a submission, including A = B.
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Author", vec![Term::var("B"), Term::var("S")]),
        ]);
        let answers = evaluate(&schema, &sk, &q).unwrap();
        // s1: {Bob,Eva}² = 4, s2: {Eva}² = 1, s3: {Eva,Carlos}² = 4 → 9
        assert_eq!(answers.len(), 9);
    }

    #[test]
    fn projection_deduplicates() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Author", vec![Term::var("B"), Term::var("S")]),
        ]);
        let rows = evaluate_project(&schema, &sk, &q, &["A".to_string()]).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn unknown_predicate_and_bad_arity_error() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![Atom::new("Nope", vec![Term::var("X")])]);
        assert!(matches!(evaluate(&schema, &sk, &q), Err(RelError::UnknownPredicate(_))));
        let q = ConjunctiveQuery::new(vec![Atom::new("Author", vec![Term::var("X")])]);
        assert!(matches!(evaluate(&schema, &sk, &q), Err(RelError::ArityMismatch { .. })));
    }

    #[test]
    fn unbound_projection_variable_errors() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let err = evaluate_project(&schema, &sk, &q, &["Z".to_string()]).unwrap_err();
        assert!(matches!(err, RelError::MalformedQuery(_)));
    }
}
