//! The *universal table*: joining all base relations into one flat table.
//!
//! The paper (Section 6.3, Figure 8 and Table 5) compares CaRL against the
//! naive strategy of performing causal inference on "the universal table
//! obtained by joining all base relations" — i.e. pretending the relational
//! database were a single homogeneous unit table. This module implements
//! that construction so the baseline can be reproduced faithfully.
//!
//! The join is a natural join over shared entity classes: starting from the
//! relationship with the most tuples, we repeatedly join in every
//! relationship that shares an entity class with the current result, then
//! attach all entity attributes (and relationship attributes) as columns.
//! Entities that end up unconnected are ignored (they would produce a
//! Cartesian product, which is never what the baseline intends).

use crate::error::RelResult;
use crate::instance::Instance;
use crate::schema::PredicateKind;
use crate::table::Table;
use crate::value::{Value, ValueKey};
use std::collections::{HashMap, HashSet};

/// One row of the intermediate join: a binding of entity-class "roles" to keys.
type JoinRow = HashMap<String, Value>;

/// Construct the universal table of an instance.
///
/// Columns: one per entity class that participates in any relationship
/// (named after the class, holding the entity key), plus one column per
/// *observed* attribute function, named after the attribute. Attribute
/// columns of relationship predicates are included when both endpoint
/// entities are present in the join.
pub fn universal_table(instance: &Instance) -> RelResult<Table> {
    let schema = instance.schema();
    let skeleton = instance.skeleton();

    // Collect relationships ordered by size (largest first to seed the join).
    // Self-relationships (e.g. a collaboration network Collab(Person, Person))
    // are skipped: a natural join over them is ambiguous (both positions bind
    // the same class) and would square the table. This mirrors what an
    // analyst flattening the database would do — and is precisely how the
    // universal-table baseline loses the interference structure.
    let mut rels: Vec<&crate::schema::RelationshipDef> = schema
        .relationships()
        .filter(|r| {
            let mut seen = std::collections::HashSet::new();
            r.entities.iter().all(|e| seen.insert(e.clone()))
        })
        .collect();
    rels.sort_by_key(|r| std::cmp::Reverse(skeleton.relationship_count(&r.name)));

    let mut joined: Vec<JoinRow> = Vec::new();
    let mut joined_classes: HashSet<String> = HashSet::new();
    let mut used: HashSet<String> = HashSet::new();

    if rels.is_empty() {
        // No relationships: the universal table is just the concatenation of
        // entity classes; ambiguous, so we produce one row per entity of the
        // largest class.
        if let Some(ent) = schema
            .entities()
            .max_by_key(|e| skeleton.entity_count(&e.name))
        {
            for key in skeleton.entity_keys(&ent.name) {
                let mut row = JoinRow::new();
                row.insert(ent.name.clone(), key.clone());
                joined.push(row);
            }
            joined_classes.insert(ent.name.clone());
        }
    } else {
        // Seed with the largest relationship.
        let seed = rels[0];
        used.insert(seed.name.clone());
        for tuple in skeleton.relationship_tuples(&seed.name) {
            let mut row = JoinRow::new();
            for (class, key) in seed.entities.iter().zip(tuple.iter()) {
                row.insert(class.clone(), key.clone());
            }
            joined.push(row);
        }
        joined_classes.extend(seed.entities.iter().cloned());

        // Repeatedly join in any relationship that shares a class.
        loop {
            let candidate = rels.iter().find(|r| {
                !used.contains(&r.name) && r.entities.iter().any(|e| joined_classes.contains(e))
            });
            let Some(rel) = candidate else { break };
            used.insert(rel.name.clone());

            // Index the new relation on its shared positions.
            let shared: Vec<usize> = rel
                .entities
                .iter()
                .enumerate()
                .filter(|(_, e)| joined_classes.contains(*e))
                .map(|(i, _)| i)
                .collect();
            // Grouping keys are borrowed `ValueKey` views — no per-tuple
            // key-string allocation.
            let mut index: HashMap<Vec<ValueKey<'_>>, Vec<&Vec<Value>>> = HashMap::new();
            for tuple in skeleton.relationship_tuples(&rel.name) {
                let key: Vec<ValueKey<'_>> = shared.iter().map(|&i| ValueKey(&tuple[i])).collect();
                index.entry(key).or_default().push(tuple);
            }

            let mut next = Vec::new();
            for row in &joined {
                let key: Vec<ValueKey<'_>> = shared
                    .iter()
                    .map(|&i| ValueKey(&row[&rel.entities[i]]))
                    .collect();
                if let Some(matches) = index.get(&key) {
                    for tuple in matches {
                        let mut extended = row.clone();
                        for (class, v) in rel.entities.iter().zip(tuple.iter()) {
                            extended.insert(class.clone(), v.clone());
                        }
                        next.push(extended);
                    }
                }
                // Rows with no match are dropped (inner join), mirroring what
                // an analyst would get from a SQL natural join.
            }
            joined = next;
            joined_classes.extend(rel.entities.iter().cloned());
        }
    }

    // Assemble the output table.
    let mut classes: Vec<String> = joined_classes.iter().cloned().collect();
    classes.sort();
    let mut table = Table::default();
    for class in &classes {
        let values: Vec<Value> = joined
            .iter()
            .map(|row| row.get(class).cloned().unwrap_or(Value::Null))
            .collect();
        table.add_column(class, values)?;
    }

    // Attach observed attribute columns.
    for attr in schema.attributes().filter(|a| a.observed) {
        match schema.predicate_kind(&attr.subject) {
            Some(PredicateKind::Entity) => {
                if !joined_classes.contains(&attr.subject) {
                    continue;
                }
                let values: Vec<Value> = joined
                    .iter()
                    .map(|row| {
                        let key = &row[&attr.subject];
                        instance
                            .attribute(&attr.name, std::slice::from_ref(key))
                            .cloned()
                            .unwrap_or(Value::Null)
                    })
                    .collect();
                table.add_column(&attr.name, values)?;
            }
            Some(PredicateKind::Relationship) => {
                let Some(rel) = schema.relationship(&attr.subject) else {
                    continue;
                };
                if !rel.entities.iter().all(|e| joined_classes.contains(e)) {
                    continue;
                }
                let values: Vec<Value> = joined
                    .iter()
                    .map(|row| {
                        let key: Vec<Value> = rel.entities.iter().map(|e| row[e].clone()).collect();
                        instance
                            .attribute(&attr.name, &key)
                            .cloned()
                            .unwrap_or(Value::Null)
                    })
                    .collect();
                table.add_column(&attr.name, values)?;
            }
            None => {}
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universal_table_of_review_example() {
        let inst = Instance::review_example();
        let t = universal_table(&inst).unwrap();
        // One row per (author, submission, conference) combination reachable
        // through Author ⋈ Submitted: 5 authorships, each submission has one
        // conference → 5 rows.
        assert_eq!(t.row_count(), 5);
        for col in [
            "Person",
            "Submission",
            "Conference",
            "Prestige",
            "Score",
            "Blind",
            "Qualification",
        ] {
            assert!(t.has_column(col), "missing column {col}");
        }
        // Unobserved Quality must not appear.
        assert!(!t.has_column("Quality"));
    }

    #[test]
    fn duplication_bias_is_visible() {
        // The universal table duplicates a submission once per author — the
        // statistical hazard the paper warns about. Check the duplication
        // explicitly: s1 and s3 have two authors each.
        let inst = Instance::review_example();
        let t = universal_table(&inst).unwrap();
        let subs = t.column("Submission").unwrap();
        let s1_count = subs
            .values
            .iter()
            .filter(|v| **v == Value::from("s1"))
            .count();
        assert_eq!(s1_count, 2);
    }

    #[test]
    fn instance_without_relationships_uses_largest_entity() {
        use crate::schema::{DomainType, RelationalSchema};
        let mut schema = RelationalSchema::new();
        schema.add_entity("Patient").unwrap();
        schema
            .add_attribute("Age", "Patient", DomainType::Int, true)
            .unwrap();
        let mut inst = Instance::new(schema);
        for i in 0..4 {
            inst.add_entity("Patient", Value::from(format!("p{i}")))
                .unwrap();
            inst.set_attribute("Age", &[Value::from(format!("p{i}"))], Value::Int(30 + i))
                .unwrap();
        }
        let t = universal_table(&inst).unwrap();
        assert_eq!(t.row_count(), 4);
        assert!(t.has_column("Age"));
    }
}
