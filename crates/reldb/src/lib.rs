//! `reldb` — a minimal, self-contained, in-memory relational database
//! substrate for causal relational learning.
//!
//! The CaRL framework (Salimi et al., SIGMOD 2020) operates over
//! multi-relational data presented in an *entity–relationship–attribute*
//! form (a "relational causal schema"). This crate provides everything the
//! CaRL engine needs from a database system:
//!
//! * a typed value model ([`Value`], [`DomainType`]),
//! * schemas of entities, relationships and attribute functions
//!   ([`RelationalSchema`]),
//! * instances consisting of a *relational skeleton* (the grounded entities
//!   and relationship tuples) plus attribute assignments
//!   ([`Instance`], [`Skeleton`]),
//! * planned conjunctive-query evaluation with hash joins ([`query`],
//!   [`plan`], [`eval`]) over lazily built secondary indexes ([`index`]),
//!   used to ground relational causal rules,
//! * group-by aggregation ([`aggregate`]) used by aggregate rules and by the
//!   embedding functions,
//! * a generic column-named [`Table`] with CSV import/export, used for unit
//!   tables and experiment output,
//! * the *universal table* construction ([`universal`]) used by the flat
//!   single-table baseline the paper compares against.
//!
//! The crate is deliberately free of external database dependencies: every
//! algorithm (join ordering, aggregation, indexing) is implemented here so
//! the whole reproduction is auditable and runs on a laptop.
//!
//! # Quick example
//!
//! ```
//! use reldb::{RelationalSchema, DomainType, Instance, Value};
//!
//! // The running example of the paper (Figure 2), in miniature.
//! let mut schema = RelationalSchema::new();
//! schema.add_entity("Person").unwrap();
//! schema.add_entity("Submission").unwrap();
//! schema.add_relationship("Author", &["Person", "Submission"]).unwrap();
//! schema.add_attribute("Prestige", "Person", DomainType::Bool, true).unwrap();
//! schema.add_attribute("Score", "Submission", DomainType::Float, true).unwrap();
//!
//! let mut inst = Instance::new(schema);
//! inst.add_entity("Person", Value::from("Bob")).unwrap();
//! inst.add_entity("Submission", Value::from("s1")).unwrap();
//! inst.add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")]).unwrap();
//! inst.set_attribute("Prestige", &[Value::from("Bob")], Value::Int(1)).unwrap();
//! inst.set_attribute("Score", &[Value::from("s1")], Value::Float(0.75)).unwrap();
//!
//! assert_eq!(inst.skeleton().entity_count("Person"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod csv;
pub mod error;
pub mod eval;
pub mod index;
pub mod instance;
pub mod plan;
pub mod query;
pub mod schema;
pub mod skeleton;
pub mod symbols;
pub mod table;
pub mod universal;
pub mod value;

pub use aggregate::{group_by, AggFn};
pub use error::{RelError, RelResult};
pub use eval::{
    evaluate, evaluate_bindings_filtered, evaluate_bindings_in, evaluate_filtered, evaluate_in,
    evaluate_naive, evaluate_project, evaluate_tuples, evaluate_tuples_chunked,
    evaluate_tuples_filtered, evaluate_tuples_filtered_chunked, Bindings, TupleAnswers,
};
pub use index::{IndexCache, IndexCacheStats, PlanCacheStats};
pub use instance::{DeltaOp, DeltaSet, Instance, Mutation};
pub use plan::{
    instantiate, plan_query, plan_query_filtered, shape_key, verify, Access, EqFilter, Plan,
    PlanFact, PlanStep, SemiJoin, SlotTerm,
};
pub use query::{Atom, ConjunctiveQuery, Term};
pub use schema::{
    AttributeDef, DomainType, EntityDef, PredicateKind, RelationalSchema, RelationshipDef,
};
pub use skeleton::{Skeleton, UnitKey};
pub use symbols::{Sym, SymbolTable};
pub use table::{Column, Table};
pub use universal::universal_table;
pub use value::{Value, ValueKey};
