//! Error types for the relational substrate.

use std::fmt;

/// Errors produced by schema construction, instance population, query
/// evaluation and table manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum RelError {
    /// A predicate (entity or relationship) with this name already exists.
    DuplicatePredicate(String),

    /// An attribute with this name already exists.
    DuplicateAttribute(String),

    /// Reference to an entity or relationship that is not in the schema.
    UnknownPredicate(String),

    /// Reference to an attribute function that is not in the schema.
    UnknownAttribute(String),

    /// A relationship was declared over an entity that does not exist.
    UnknownEntityInRelationship {
        /// The offending relationship name.
        rel: String,
        /// The missing entity name.
        entity: String,
    },

    /// A tuple had the wrong number of components for its predicate.
    ArityMismatch {
        /// Predicate name.
        predicate: String,
        /// Declared arity.
        expected: usize,
        /// Supplied arity.
        actual: usize,
    },

    /// A relationship tuple referenced an entity key that has not been added.
    DanglingReference {
        /// Relationship name.
        rel: String,
        /// Entity class of the missing key.
        entity: String,
        /// The missing key, rendered.
        key: String,
    },

    /// A value did not match the declared domain of an attribute.
    DomainMismatch {
        /// Attribute name.
        attribute: String,
        /// Declared domain.
        domain: String,
        /// The offending value, rendered.
        value: String,
    },

    /// Query referenced an undefined variable or was otherwise malformed.
    MalformedQuery(String),

    /// A [`crate::plan::Plan`] violated a structural invariant (register
    /// discipline, access-path preconditions, semi-join soundness). Raised
    /// by [`crate::plan::verify`]; a planner that emits one of these has a
    /// bug.
    InvalidPlan {
        /// Description of the violated invariant.
        message: String,
    },

    /// A table operation referenced a column that does not exist.
    UnknownColumn(String),

    /// Column length mismatch when assembling a table.
    ColumnLengthMismatch {
        /// Column name.
        column: String,
        /// Expected number of rows.
        expected: usize,
        /// Actual number of rows.
        actual: usize,
    },

    /// CSV parse error.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },

    /// I/O error wrapper (CSV import/export).
    Io(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicatePredicate(name) => write!(f, "predicate `{name}` is already defined"),
            Self::DuplicateAttribute(name) => write!(f, "attribute `{name}` is already defined"),
            Self::UnknownPredicate(name) => write!(f, "unknown predicate `{name}`"),
            Self::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            Self::UnknownEntityInRelationship { rel, entity } => {
                write!(
                    f,
                    "relationship `{rel}` references unknown entity `{entity}`"
                )
            }
            Self::ArityMismatch {
                predicate,
                expected,
                actual,
            } => write!(
                f,
                "predicate `{predicate}` expects arity {expected}, got {actual}"
            ),
            Self::DanglingReference { rel, entity, key } => {
                write!(
                    f,
                    "relationship `{rel}` references missing `{entity}` key `{key}`"
                )
            }
            Self::DomainMismatch {
                attribute,
                domain,
                value,
            } => write!(
                f,
                "value `{value}` is not valid for attribute `{attribute}` with domain {domain}"
            ),
            Self::MalformedQuery(message) => write!(f, "malformed query: {message}"),
            Self::InvalidPlan { message } => write!(f, "invalid plan: {message}"),
            Self::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            Self::ColumnLengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column `{column}` has {actual} rows, expected {expected}"
            ),
            Self::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            Self::Io(message) => write!(f, "io error: {message}"),
        }
    }
}

impl std::error::Error for RelError {}

/// Convenient result alias used throughout the crate.
pub type RelResult<T> = Result<T, RelError>;

impl From<std::io::Error> for RelError {
    fn from(e: std::io::Error) -> Self {
        RelError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelError::ArityMismatch {
            predicate: "Author".into(),
            expected: 2,
            actual: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("Author"));
        assert!(msg.contains('2'));
        assert!(msg.contains('3'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: RelError = io.into();
        assert!(matches!(e, RelError::Io(_)));
    }
}
