//! Error types for the relational substrate.

use thiserror::Error;

/// Errors produced by schema construction, instance population, query
/// evaluation and table manipulation.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum RelError {
    /// A predicate (entity or relationship) with this name already exists.
    #[error("predicate `{0}` is already defined")]
    DuplicatePredicate(String),

    /// An attribute with this name already exists.
    #[error("attribute `{0}` is already defined")]
    DuplicateAttribute(String),

    /// Reference to an entity or relationship that is not in the schema.
    #[error("unknown predicate `{0}`")]
    UnknownPredicate(String),

    /// Reference to an attribute function that is not in the schema.
    #[error("unknown attribute `{0}`")]
    UnknownAttribute(String),

    /// A relationship was declared over an entity that does not exist.
    #[error("relationship `{rel}` references unknown entity `{entity}`")]
    UnknownEntityInRelationship {
        /// The offending relationship name.
        rel: String,
        /// The missing entity name.
        entity: String,
    },

    /// A tuple had the wrong number of components for its predicate.
    #[error("predicate `{predicate}` expects arity {expected}, got {actual}")]
    ArityMismatch {
        /// Predicate name.
        predicate: String,
        /// Declared arity.
        expected: usize,
        /// Supplied arity.
        actual: usize,
    },

    /// A relationship tuple referenced an entity key that has not been added.
    #[error("relationship `{rel}` references missing `{entity}` key `{key}`")]
    DanglingReference {
        /// Relationship name.
        rel: String,
        /// Entity class of the missing key.
        entity: String,
        /// The missing key, rendered.
        key: String,
    },

    /// A value did not match the declared domain of an attribute.
    #[error("value `{value}` is not valid for attribute `{attribute}` with domain {domain}")]
    DomainMismatch {
        /// Attribute name.
        attribute: String,
        /// Declared domain.
        domain: String,
        /// The offending value, rendered.
        value: String,
    },

    /// Query referenced an undefined variable or was otherwise malformed.
    #[error("malformed query: {0}")]
    MalformedQuery(String),

    /// A table operation referenced a column that does not exist.
    #[error("unknown column `{0}`")]
    UnknownColumn(String),

    /// Column length mismatch when assembling a table.
    #[error("column `{column}` has {actual} rows, expected {expected}")]
    ColumnLengthMismatch {
        /// Column name.
        column: String,
        /// Expected number of rows.
        expected: usize,
        /// Actual number of rows.
        actual: usize,
    },

    /// CSV parse error.
    #[error("csv error at line {line}: {message}")]
    Csv {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },

    /// I/O error wrapper (CSV import/export).
    #[error("io error: {0}")]
    Io(String),
}

/// Convenient result alias used throughout the crate.
pub type RelResult<T> = Result<T, RelError>;

impl From<std::io::Error> for RelError {
    fn from(e: std::io::Error) -> Self {
        RelError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelError::ArityMismatch {
            predicate: "Author".into(),
            expected: 2,
            actual: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("Author"));
        assert!(msg.contains('2'));
        assert!(msg.contains('3'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: RelError = io.into();
        assert!(matches!(e, RelError::Io(_)));
    }
}
