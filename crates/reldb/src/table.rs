//! A generic column-named table.
//!
//! Tables are the lingua franca at the boundary of the system: the unit
//! table produced by CaRL's Algorithm 1 is a [`Table`], the universal-table
//! baseline produces a [`Table`], and experiment harnesses export tables to
//! CSV.

use crate::error::{RelError, RelResult};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A single named column of values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Cell values, one per row.
    pub values: Vec<Value>,
}

/// A row-count-consistent collection of named columns.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table {
    columns: Vec<Column>,
    index: HashMap<String, usize>,
    rows: usize,
}

impl Table {
    /// Create an empty table with the given column names and zero rows.
    pub fn with_columns(names: &[&str]) -> Self {
        let mut t = Table::default();
        for n in names {
            t.columns.push(Column {
                name: (*n).to_string(),
                values: Vec::new(),
            });
            t.index.insert((*n).to_string(), t.columns.len() - 1);
        }
        t
    }

    /// Build a table from complete columns, validating equal lengths and
    /// unique names.
    pub fn from_columns(columns: Vec<Column>) -> RelResult<Self> {
        let rows = columns.first().map_or(0, |c| c.values.len());
        let mut index = HashMap::new();
        for (i, c) in columns.iter().enumerate() {
            if c.values.len() != rows {
                return Err(RelError::ColumnLengthMismatch {
                    column: c.name.clone(),
                    expected: rows,
                    actual: c.values.len(),
                });
            }
            if index.insert(c.name.clone(), i).is_some() {
                return Err(RelError::DuplicateAttribute(c.name.clone()));
            }
        }
        Ok(Self {
            columns,
            index,
            rows,
        })
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Whether a column exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Append a row given values for every column (positional).
    pub fn push_row(&mut self, row: Vec<Value>) -> RelResult<()> {
        if row.len() != self.columns.len() {
            return Err(RelError::ColumnLengthMismatch {
                column: "<row>".to_string(),
                expected: self.columns.len(),
                actual: row.len(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.values.push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> RelResult<&Column> {
        self.index
            .get(name)
            .map(|&i| &self.columns[i])
            .ok_or_else(|| RelError::UnknownColumn(name.to_string()))
    }

    /// A column rendered as `f64`s; missing / non-numeric cells become NaN.
    pub fn column_f64(&self, name: &str) -> RelResult<Vec<f64>> {
        Ok(self
            .column(name)?
            .values
            .iter()
            .map(|v| v.as_f64().unwrap_or(f64::NAN))
            .collect())
    }

    /// Read a single cell.
    pub fn cell(&self, row: usize, name: &str) -> RelResult<&Value> {
        let col = self.column(name)?;
        col.values.get(row).ok_or_else(|| {
            RelError::MalformedQuery(format!("row {row} out of bounds ({} rows)", self.rows))
        })
    }

    /// Add a new column of values (must match the current row count).
    pub fn add_column(&mut self, name: &str, values: Vec<Value>) -> RelResult<()> {
        if self.index.contains_key(name) {
            return Err(RelError::DuplicateAttribute(name.to_string()));
        }
        if !self.columns.is_empty() && values.len() != self.rows {
            return Err(RelError::ColumnLengthMismatch {
                column: name.to_string(),
                expected: self.rows,
                actual: values.len(),
            });
        }
        if self.columns.is_empty() {
            self.rows = values.len();
        }
        self.columns.push(Column {
            name: name.to_string(),
            values,
        });
        self.index.insert(name.to_string(), self.columns.len() - 1);
        Ok(())
    }

    /// Select a subset of rows (by predicate on the row index) into a new table.
    pub fn filter_rows(&self, mut keep: impl FnMut(usize) -> bool) -> Table {
        let kept: Vec<usize> = (0..self.rows).filter(|&i| keep(i)).collect();
        let columns = self
            .columns
            .iter()
            .map(|c| Column {
                name: c.name.clone(),
                values: kept.iter().map(|&i| c.values[i].clone()).collect(),
            })
            .collect();
        Table::from_columns(columns).expect("filtered columns have equal length")
    }

    /// Select a subset of columns into a new table (order given by `names`).
    pub fn select(&self, names: &[&str]) -> RelResult<Table> {
        let mut cols = Vec::with_capacity(names.len());
        for n in names {
            cols.push(self.column(n)?.clone());
        }
        Table::from_columns(cols)
    }

    /// Iterate over rows as vectors of references.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<&Value>> + '_ {
        (0..self.rows).map(move |i| self.columns.iter().map(|c| &c.values[i]).collect())
    }
}

impl fmt::Display for Table {
    /// Render as a compact, aligned ASCII table (used by experiment binaries).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = self.column_names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let rendered: Vec<Vec<String>> = (0..self.rows)
            .map(|i| {
                self.columns
                    .iter()
                    .enumerate()
                    .map(|(j, c)| {
                        let s = match &c.values[i] {
                            Value::Float(x) => format!("{x:.4}"),
                            other => other.to_string(),
                        };
                        widths[j] = widths[j].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let header: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(j, n)| format!("{:>w$}", n, w = widths[j]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(f, "{}", "-".repeat(header.join("  ").len()))?;
        for row in rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(j, s)| format!("{:>w$}", s, w = widths[j]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::with_columns(&["unit", "y", "t"]);
        t.push_row(vec![Value::from("Bob"), Value::from(0.75), Value::from(1)])
            .unwrap();
        t.push_row(vec![
            Value::from("Carlos"),
            Value::from(0.1),
            Value::from(1),
        ])
        .unwrap();
        t.push_row(vec![Value::from("Eva"), Value::from(0.41), Value::from(0)])
            .unwrap();
        t
    }

    #[test]
    fn construction_and_access() {
        let t = sample();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_count(), 3);
        assert_eq!(t.cell(0, "unit").unwrap(), &Value::from("Bob"));
        assert_eq!(t.column_f64("y").unwrap(), vec![0.75, 0.1, 0.41]);
        assert!(t.has_column("t"));
        assert!(!t.has_column("z"));
    }

    #[test]
    fn push_row_validates_width() {
        let mut t = sample();
        assert!(t.push_row(vec![Value::from("x")]).is_err());
    }

    #[test]
    fn from_columns_checks_lengths_and_duplicates() {
        let cols = vec![
            Column {
                name: "a".into(),
                values: vec![Value::Int(1)],
            },
            Column {
                name: "b".into(),
                values: vec![],
            },
        ];
        assert!(matches!(
            Table::from_columns(cols),
            Err(RelError::ColumnLengthMismatch { .. })
        ));
        let cols = vec![
            Column {
                name: "a".into(),
                values: vec![Value::Int(1)],
            },
            Column {
                name: "a".into(),
                values: vec![Value::Int(2)],
            },
        ];
        assert!(matches!(
            Table::from_columns(cols),
            Err(RelError::DuplicateAttribute(_))
        ));
    }

    #[test]
    fn add_column_and_select() {
        let mut t = sample();
        t.add_column(
            "w",
            vec![Value::from(1.0), Value::from(2.0), Value::from(3.0)],
        )
        .unwrap();
        assert_eq!(t.column_count(), 4);
        assert!(t.add_column("w", vec![]).is_err());
        let s = t.select(&["y", "w"]).unwrap();
        assert_eq!(s.column_names(), vec!["y", "w"]);
        assert!(t.select(&["nope"]).is_err());
    }

    #[test]
    fn filter_rows_keeps_matching() {
        let t = sample();
        let treated = t.filter_rows(|i| t.cell(i, "t").unwrap().as_bool() == Some(true));
        assert_eq!(treated.row_count(), 2);
    }

    #[test]
    fn nonnumeric_cells_become_nan() {
        let t = sample();
        let xs = t.column_f64("unit").unwrap();
        assert!(xs.iter().all(|x| x.is_nan()));
    }

    #[test]
    fn display_renders_header_and_rows() {
        let t = sample();
        let s = t.to_string();
        assert!(s.contains("unit"));
        assert!(s.contains("Bob"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn iter_rows_yields_all() {
        let t = sample();
        assert_eq!(t.iter_rows().count(), 3);
    }
}
