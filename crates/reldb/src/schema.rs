//! Relational causal schemas: entities, relationships and attribute
//! functions (Section 3.1 of the paper).
//!
//! A schema `S = (P, A)` consists of predicates `P = E ∪ R` (entity classes
//! and relationship classes) and attribute functions `A`, each attached to
//! exactly one predicate and flagged as *observed* or *unobserved*.

use crate::error::{RelError, RelResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The value domain of an attribute function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainType {
    /// Binary attribute (treatments are required to be binary, §3.3).
    Bool,
    /// Integer-valued attribute.
    Int,
    /// Real-valued attribute (responses are real-valued, §4.2).
    Float,
    /// Categorical / string attribute.
    Categorical,
}

impl DomainType {
    /// Whether `value` is admissible for this domain. `Null` is always
    /// admissible because attribute functions may be unobserved.
    pub fn admits(&self, value: &crate::Value) -> bool {
        use crate::Value;
        match (self, value) {
            (_, Value::Null) => true,
            (DomainType::Bool, Value::Bool(_)) => true,
            // 0/1 integers are accepted as booleans for convenience.
            (DomainType::Bool, Value::Int(i)) => *i == 0 || *i == 1,
            (DomainType::Int, Value::Int(_)) => true,
            (DomainType::Float, Value::Float(_) | Value::Int(_)) => true,
            (DomainType::Categorical, Value::Str(_)) => true,
            _ => false,
        }
    }
}

impl std::fmt::Display for DomainType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DomainType::Bool => "bool",
            DomainType::Int => "int",
            DomainType::Float => "float",
            DomainType::Categorical => "categorical",
        };
        write!(f, "{s}")
    }
}

/// Whether a predicate is an entity class or a relationship class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredicateKind {
    /// Entity class, e.g. `Person(A)`.
    Entity,
    /// Relationship class, e.g. `Author(A, S)`.
    Relationship,
}

/// An entity class declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityDef {
    /// Entity class name, e.g. `"Person"`.
    pub name: String,
}

/// A relationship class declaration over previously declared entities.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationshipDef {
    /// Relationship name, e.g. `"Author"`.
    pub name: String,
    /// Participating entity classes, in positional order, e.g.
    /// `["Person", "Submission"]`.
    pub entities: Vec<String>,
}

/// An attribute function declaration `A[X]` attached to an entity or
/// relationship class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Attribute name, e.g. `"Prestige"`.
    pub name: String,
    /// Name of the predicate (entity or relationship) it attaches to.
    pub subject: String,
    /// Declared value domain.
    pub domain: DomainType,
    /// Whether the attribute is observed in instances (`AObs ⊆ A`).
    pub observed: bool,
}

/// A relational causal schema: entities, relationships and attributes.
///
/// Construction is incremental and validated: relationships may only
/// reference declared entities, attributes may only attach to declared
/// predicates, and names are unique across predicates and across attributes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RelationalSchema {
    entities: BTreeMap<String, EntityDef>,
    relationships: BTreeMap<String, RelationshipDef>,
    attributes: BTreeMap<String, AttributeDef>,
}

impl RelationalSchema {
    /// Create an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an entity class.
    pub fn add_entity(&mut self, name: &str) -> RelResult<&mut Self> {
        if self.has_predicate(name) {
            return Err(RelError::DuplicatePredicate(name.to_string()));
        }
        self.entities.insert(
            name.to_string(),
            EntityDef {
                name: name.to_string(),
            },
        );
        Ok(self)
    }

    /// Declare a relationship class over `entities` (by name, positional).
    pub fn add_relationship(&mut self, name: &str, entities: &[&str]) -> RelResult<&mut Self> {
        if self.has_predicate(name) {
            return Err(RelError::DuplicatePredicate(name.to_string()));
        }
        for e in entities {
            if !self.entities.contains_key(*e) {
                return Err(RelError::UnknownEntityInRelationship {
                    rel: name.to_string(),
                    entity: (*e).to_string(),
                });
            }
        }
        self.relationships.insert(
            name.to_string(),
            RelationshipDef {
                name: name.to_string(),
                entities: entities.iter().map(|s| s.to_string()).collect(),
            },
        );
        Ok(self)
    }

    /// Declare an attribute function on predicate `subject`.
    pub fn add_attribute(
        &mut self,
        name: &str,
        subject: &str,
        domain: DomainType,
        observed: bool,
    ) -> RelResult<&mut Self> {
        if self.attributes.contains_key(name) {
            return Err(RelError::DuplicateAttribute(name.to_string()));
        }
        if !self.has_predicate(subject) {
            return Err(RelError::UnknownPredicate(subject.to_string()));
        }
        self.attributes.insert(
            name.to_string(),
            AttributeDef {
                name: name.to_string(),
                subject: subject.to_string(),
                domain,
                observed,
            },
        );
        Ok(self)
    }

    /// Whether `name` is a declared entity or relationship.
    pub fn has_predicate(&self, name: &str) -> bool {
        self.entities.contains_key(name) || self.relationships.contains_key(name)
    }

    /// The kind (entity vs relationship) of predicate `name`, if declared.
    pub fn predicate_kind(&self, name: &str) -> Option<PredicateKind> {
        if self.entities.contains_key(name) {
            Some(PredicateKind::Entity)
        } else if self.relationships.contains_key(name) {
            Some(PredicateKind::Relationship)
        } else {
            None
        }
    }

    /// The arity of predicate `name`: 1 for entities, the number of
    /// participating entities for relationships.
    pub fn predicate_arity(&self, name: &str) -> Option<usize> {
        match self.predicate_kind(name)? {
            PredicateKind::Entity => Some(1),
            PredicateKind::Relationship => Some(self.relationships[name].entities.len()),
        }
    }

    /// The entity classes of the positions of predicate `name`.
    /// For an entity this is `[name]`; for a relationship, its declared list.
    pub fn predicate_positions(&self, name: &str) -> Option<Vec<String>> {
        match self.predicate_kind(name)? {
            PredicateKind::Entity => Some(vec![name.to_string()]),
            PredicateKind::Relationship => Some(self.relationships[name].entities.clone()),
        }
    }

    /// Look up an entity definition.
    pub fn entity(&self, name: &str) -> Option<&EntityDef> {
        self.entities.get(name)
    }

    /// Look up a relationship definition.
    pub fn relationship(&self, name: &str) -> Option<&RelationshipDef> {
        self.relationships.get(name)
    }

    /// Look up an attribute definition.
    pub fn attribute(&self, name: &str) -> Option<&AttributeDef> {
        self.attributes.get(name)
    }

    /// Require an attribute, returning an error if it does not exist.
    pub fn require_attribute(&self, name: &str) -> RelResult<&AttributeDef> {
        self.attribute(name)
            .ok_or_else(|| RelError::UnknownAttribute(name.to_string()))
    }

    /// Require a predicate, returning an error if it does not exist.
    pub fn require_predicate(&self, name: &str) -> RelResult<PredicateKind> {
        self.predicate_kind(name)
            .ok_or_else(|| RelError::UnknownPredicate(name.to_string()))
    }

    /// Iterate over declared entity classes.
    pub fn entities(&self) -> impl Iterator<Item = &EntityDef> {
        self.entities.values()
    }

    /// Iterate over declared relationship classes.
    pub fn relationships(&self) -> impl Iterator<Item = &RelationshipDef> {
        self.relationships.values()
    }

    /// Iterate over declared attribute functions.
    pub fn attributes(&self) -> impl Iterator<Item = &AttributeDef> {
        self.attributes.values()
    }

    /// Attributes attached to a particular predicate.
    pub fn attributes_of<'a>(
        &'a self,
        subject: &'a str,
    ) -> impl Iterator<Item = &'a AttributeDef> + 'a {
        self.attributes
            .values()
            .filter(move |a| a.subject == subject)
    }

    /// Relationship classes in which entity class `entity` participates.
    pub fn relationships_of_entity<'a>(
        &'a self,
        entity: &'a str,
    ) -> impl Iterator<Item = &'a RelationshipDef> + 'a {
        self.relationships
            .values()
            .filter(move |r| r.entities.iter().any(|e| e == entity))
    }

    /// Build the relational causal schema of the paper's running example
    /// (REVIEWDATA, Example 3.1). Widely used in tests and docs.
    pub fn review_example() -> Self {
        let mut s = Self::new();
        s.add_entity("Person").unwrap();
        s.add_entity("Submission").unwrap();
        s.add_entity("Conference").unwrap();
        s.add_relationship("Author", &["Person", "Submission"])
            .unwrap();
        s.add_relationship("Submitted", &["Submission", "Conference"])
            .unwrap();
        s.add_attribute("Prestige", "Person", DomainType::Bool, true)
            .unwrap();
        s.add_attribute("Qualification", "Person", DomainType::Float, true)
            .unwrap();
        s.add_attribute("Score", "Submission", DomainType::Float, true)
            .unwrap();
        s.add_attribute("Blind", "Conference", DomainType::Bool, true)
            .unwrap();
        s.add_attribute("Quality", "Submission", DomainType::Float, false)
            .unwrap();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn review_example_schema_matches_paper() {
        let s = RelationalSchema::review_example();
        assert_eq!(s.entities().count(), 3);
        assert_eq!(s.relationships().count(), 2);
        assert_eq!(s.attributes().count(), 5);
        assert_eq!(s.predicate_arity("Author"), Some(2));
        assert_eq!(s.predicate_arity("Person"), Some(1));
        assert!(!s.attribute("Quality").unwrap().observed);
        assert_eq!(
            s.predicate_positions("Submitted").unwrap(),
            vec!["Submission".to_string(), "Conference".to_string()]
        );
    }

    #[test]
    fn duplicate_predicates_and_attributes_rejected() {
        let mut s = RelationalSchema::new();
        s.add_entity("Person").unwrap();
        assert!(matches!(
            s.add_entity("Person"),
            Err(RelError::DuplicatePredicate(_))
        ));
        s.add_attribute("Age", "Person", DomainType::Int, true)
            .unwrap();
        assert!(matches!(
            s.add_attribute("Age", "Person", DomainType::Int, true),
            Err(RelError::DuplicateAttribute(_))
        ));
    }

    #[test]
    fn relationship_requires_declared_entities() {
        let mut s = RelationalSchema::new();
        s.add_entity("Person").unwrap();
        let err = s
            .add_relationship("Author", &["Person", "Submission"])
            .unwrap_err();
        assert!(matches!(err, RelError::UnknownEntityInRelationship { .. }));
    }

    #[test]
    fn attribute_requires_declared_subject() {
        let mut s = RelationalSchema::new();
        let err = s
            .add_attribute("Age", "Person", DomainType::Int, true)
            .unwrap_err();
        assert!(matches!(err, RelError::UnknownPredicate(_)));
    }

    #[test]
    fn domain_admission() {
        assert!(DomainType::Bool.admits(&Value::Bool(true)));
        assert!(DomainType::Bool.admits(&Value::Int(1)));
        assert!(!DomainType::Bool.admits(&Value::Int(2)));
        assert!(DomainType::Float.admits(&Value::Int(3)));
        assert!(!DomainType::Int.admits(&Value::Float(1.5)));
        assert!(DomainType::Categorical.admits(&Value::Str("x".into())));
        assert!(DomainType::Int.admits(&Value::Null));
    }

    #[test]
    fn relationships_of_entity_finds_participation() {
        let s = RelationalSchema::review_example();
        let rels: Vec<_> = s
            .relationships_of_entity("Submission")
            .map(|r| r.name.clone())
            .collect();
        assert!(rels.contains(&"Author".to_string()));
        assert!(rels.contains(&"Submitted".to_string()));
    }
}
