//! The typed value model shared by every layer of the system.
//!
//! Values are deliberately small: the causal analyses in the paper only need
//! booleans (treatments), numbers (responses, covariates) and strings
//! (entity keys, categorical covariates). A `Null` variant represents the
//! unobserved attribute functions of the relational causal schema (e.g.
//! `Quality[S]` in the running example).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single database value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing / unobserved value.
    Null,
    /// Boolean value (typically a binary treatment).
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (entity keys, categorical values).
    Str(String),
}

impl Value {
    /// True iff the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret the value as a float for numeric computation.
    ///
    /// Booleans map to 0.0/1.0, integers are widened, nulls and strings
    /// return `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Null => None,
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) => None,
        }
    }

    /// Interpret the value as a boolean treatment indicator.
    ///
    /// Numeric values are treated as `true` iff strictly positive, mirroring
    /// the paper's convention of binarising treatments via a threshold.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i > 0),
            Value::Float(f) => Some(*f > 0.0),
            Value::Str(_) => None,
        }
    }

    /// Borrow the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// A stable, hashable rendering used for grouping and as map keys.
    ///
    /// Floats are rendered with full precision via their bit pattern so two
    /// values group together iff they are bitwise identical.
    ///
    /// This allocates a fresh `String` per call; hot paths should prefer
    /// the borrowed [`ValueKey`] view (hashing, grouping, deduplication) or
    /// [`Value::fold_key_bytes`] (fingerprinting), which feed the same
    /// type-tagged canonical bytes without allocating.
    pub fn key_repr(&self) -> String {
        match self {
            Value::Null => "\u{0}null".to_string(),
            Value::Bool(b) => format!("\u{1}{b}"),
            Value::Int(i) => format!("\u{2}{i}"),
            Value::Float(f) => format!("\u{3}{:016x}", f.to_bits()),
            Value::Str(s) => format!("\u{4}{s}"),
        }
    }

    /// Feed a type-tagged canonical byte rendering of the value to `sink`,
    /// without allocating. Two values produce the same byte stream iff they
    /// are [`ValueKey`]-equal (same variant, bitwise-identical payload).
    pub fn fold_key_bytes(&self, sink: &mut impl FnMut(&[u8])) {
        match self {
            Value::Null => sink(&[0u8]),
            Value::Bool(b) => {
                sink(&[1u8]);
                sink(&[u8::from(*b)]);
            }
            Value::Int(i) => {
                sink(&[2u8]);
                sink(&i.to_le_bytes());
            }
            Value::Float(f) => {
                sink(&[3u8]);
                sink(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                sink(&[4u8]);
                sink(s.as_bytes());
            }
        }
    }

    /// Like [`Value::fold_key_bytes`], but consistent with `Value`'s own
    /// `Eq`/`Hash`: two values produce the same byte stream iff they
    /// compare equal, including the `Int(2) == Float(2.0)` coercion
    /// (integers are rendered through their float bit pattern, exactly as
    /// `Value::hash` does). Use this wherever a byte-derived hash must
    /// bucket no finer than `Value` equality — e.g. content-addressed node
    /// lookups keyed by `Value`-equal identities.
    pub fn fold_eq_bytes(&self, sink: &mut impl FnMut(&[u8])) {
        match self {
            Value::Null => sink(&[0u8]),
            Value::Bool(b) => {
                sink(&[1u8]);
                sink(&[u8::from(*b)]);
            }
            // Ints and equal-valued floats must render identically because
            // they compare equal.
            Value::Int(i) => {
                sink(&[3u8]);
                sink(&(*i as f64).to_bits().to_le_bytes());
            }
            Value::Float(f) => {
                sink(&[3u8]);
                sink(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                sink(&[4u8]);
                sink(s.as_bytes());
            }
        }
    }
}

/// The FNV-1a offset basis, shared by every content fingerprint in the
/// workspace (skeleton, instance, grounded-attribute identities).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold `bytes` into an FNV-1a hash state (seed with [`FNV_OFFSET`]).
pub fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(PRIME);
    }
}

/// A borrowed hashing/grouping view of a [`Value`] with *strict* (variant-
/// and bit-exact) equality — the same equivalence [`Value::key_repr`]
/// induces, without the per-value `String` allocation.
///
/// Unlike `Value`'s own `Eq` (where `Int(2) == Float(2.0)`), `ValueKey`
/// distinguishes variants: `Int(2)` and `Float(2.0)` group separately, and
/// floats compare by bit pattern (so `NaN` groups with itself). Use it
/// wherever `key_repr` strings used to serve as `HashMap`/`HashSet` keys.
#[derive(Debug, Clone, Copy)]
pub struct ValueKey<'a>(pub &'a Value);

impl PartialEq for ValueKey<'_> {
    fn eq(&self, other: &Self) -> bool {
        match (self.0, other.0) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for ValueKey<'_> {}

impl std::hash::Hash for ValueKey<'_> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.fold_key_bytes(&mut |bytes| state.write(bytes));
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64).to_bits() == b.to_bits()
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and equal-valued floats must hash identically because they
            // compare equal above.
            Value::Int(i) => {
                3u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: Null < Bool < numeric < Str; numerics compare by value
    /// (NaN sorts greater than all other numbers, equal to itself).
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        fn num_cmp(a: f64, b: f64) -> Ordering {
            match (a.is_nan(), b.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => num_cmp(*a, *b),
            (Int(a), Float(b)) => num_cmp(*a as f64, *b),
            (Float(a), Int(b)) => num_cmp(*a, *b as f64),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// Parse a CSV cell into the "most specific" value: empty → Null, then bool,
/// integer, float, and finally string.
pub fn parse_cell(cell: &str) -> Value {
    let trimmed = cell.trim();
    if trimmed.is_empty()
        || trimmed.eq_ignore_ascii_case("null")
        || trimmed.eq_ignore_ascii_case("na")
    {
        return Value::Null;
    }
    if trimmed.eq_ignore_ascii_case("true") {
        return Value::Bool(true);
    }
    if trimmed.eq_ignore_ascii_case("false") {
        return Value::Bool(false);
    }
    if let Ok(i) = trimmed.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = trimmed.parse::<f64>() {
        return Value::Float(f);
    }
    Value::Str(trimmed.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn bool_coercions_follow_threshold_convention() {
        assert_eq!(Value::Int(1).as_bool(), Some(true));
        assert_eq!(Value::Int(0).as_bool(), Some(false));
        assert_eq!(Value::Float(0.2).as_bool(), Some(true));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Str("yes".into()).as_bool(), None);
    }

    #[test]
    fn int_float_equality_is_consistent_with_hash() {
        let a = Value::Int(2);
        let b = Value::Float(2.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn ordering_is_total_and_ranks_types() {
        let mut vals = [
            Value::Str("z".into()),
            Value::Int(4),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5),
        ];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[4], Value::Str("z".into()));
    }

    #[test]
    fn nan_ordering_does_not_panic() {
        let mut vals = [
            Value::Float(f64::NAN),
            Value::Float(1.0),
            Value::Float(-1.0),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Float(-1.0));
        assert_eq!(vals[1], Value::Float(1.0));
    }

    #[test]
    fn parse_cell_detects_types() {
        assert_eq!(parse_cell(""), Value::Null);
        assert_eq!(parse_cell("NA"), Value::Null);
        assert_eq!(parse_cell("true"), Value::Bool(true));
        assert_eq!(parse_cell("42"), Value::Int(42));
        assert_eq!(parse_cell("-1.5"), Value::Float(-1.5));
        assert_eq!(parse_cell("ConfDB"), Value::Str("ConfDB".into()));
    }

    #[test]
    fn key_repr_distinguishes_types() {
        assert_ne!(Value::Int(1).key_repr(), Value::Str("1".into()).key_repr());
        assert_ne!(Value::Bool(true).key_repr(), Value::Int(1).key_repr());
    }

    #[test]
    fn value_key_matches_key_repr_equivalence() {
        use std::collections::HashSet;
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(1),
            Value::Float(1.0),
            Value::Str("1".into()),
            Value::Float(f64::NAN),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(
                    ValueKey(a) == ValueKey(b),
                    a.key_repr() == b.key_repr(),
                    "{a:?} vs {b:?}"
                );
            }
        }
        // Usable as a set key; NaN groups with itself.
        let mut set = HashSet::new();
        assert!(set.insert(ValueKey(&vals[5])));
        assert!(!set.insert(ValueKey(&vals[5])));
        // Hash consistency with equality for a borderline pair.
        fn kh(v: &Value) -> u64 {
            let mut h = DefaultHasher::new();
            ValueKey(v).hash(&mut h);
            h.finish()
        }
        assert_eq!(kh(&Value::Int(7)), kh(&Value::Int(7)));
        assert_ne!(kh(&Value::Int(1)), kh(&Value::Float(1.0)));
    }

    #[test]
    fn display_is_plain() {
        assert_eq!(Value::Float(0.75).to_string(), "0.75");
        assert_eq!(Value::Str("Bob".into()).to_string(), "Bob");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
