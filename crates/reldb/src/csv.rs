//! Minimal CSV import/export for [`Table`]s.
//!
//! Only what the experiment harness needs: comma separation, double-quote
//! escaping, header row, type sniffing on import via
//! [`crate::value::parse_cell`]. Not a general-purpose CSV library.

use crate::error::{RelError, RelResult};
use crate::table::Table;
use crate::value::{parse_cell, Value};
use std::io::{BufRead, BufReader, Read, Write};

/// Serialise a table as CSV with a header row.
pub fn write_csv<W: Write>(table: &Table, out: &mut W) -> RelResult<()> {
    let header: Vec<String> = table
        .column_names()
        .iter()
        .map(|n| escape_cell(n))
        .collect();
    writeln!(out, "{}", header.join(","))?;
    for row in table.iter_rows() {
        let cells: Vec<String> = row.iter().map(|v| escape_value(v)).collect();
        writeln!(out, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Serialise a table to a CSV string.
pub fn to_csv_string(table: &Table) -> RelResult<String> {
    let mut buf = Vec::new();
    write_csv(table, &mut buf)?;
    Ok(String::from_utf8(buf).expect("csv output is utf-8"))
}

/// Parse a CSV document (with header) into a table, sniffing cell types.
pub fn read_csv<R: Read>(input: R) -> RelResult<Table> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines();
    let header_line = match lines.next() {
        Some(l) => l?,
        None => return Ok(Table::default()),
    };
    let header = split_line(&header_line, 1)?;
    let mut table = Table::with_columns(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells = split_line(&line, i + 2)?;
        if cells.len() != header.len() {
            return Err(RelError::Csv {
                line: i + 2,
                message: format!("expected {} cells, found {}", header.len(), cells.len()),
            });
        }
        table.push_row(cells.iter().map(|c| parse_cell(c)).collect())?;
    }
    Ok(table)
}

/// Parse a CSV string into a table.
pub fn from_csv_string(s: &str) -> RelResult<Table> {
    read_csv(s.as_bytes())
}

fn escape_value(v: &Value) -> String {
    match v {
        Value::Str(s) => escape_cell(s),
        Value::Null => String::new(),
        other => other.to_string(),
    }
}

fn escape_cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Split a CSV line honouring double-quote escaping.
fn split_line(line: &str, line_no: usize) -> RelResult<Vec<String>> {
    let mut cells = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    current.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' if current.is_empty() => in_quotes = true,
            '"' => {
                return Err(RelError::Csv {
                    line: line_no,
                    message: "unexpected quote in unquoted cell".to_string(),
                })
            }
            ',' if !in_quotes => {
                cells.push(std::mem::take(&mut current));
            }
            c => current.push(c),
        }
    }
    if in_quotes {
        return Err(RelError::Csv {
            line: line_no,
            message: "unterminated quoted cell".to_string(),
        });
    }
    cells.push(current);
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::with_columns(&["name", "score", "treated"]);
        t.push_row(vec![
            Value::from("Bob"),
            Value::from(0.75),
            Value::Bool(true),
        ])
        .unwrap();
        t.push_row(vec![
            Value::from("O'Hara, Ann"),
            Value::from(0.5),
            Value::Bool(false),
        ])
        .unwrap();
        t.push_row(vec![
            Value::from("Quote\"y"),
            Value::Null,
            Value::Bool(true),
        ])
        .unwrap();
        t
    }

    #[test]
    fn roundtrip_preserves_shape_and_values() {
        let t = sample();
        let csv = to_csv_string(&t).unwrap();
        let back = from_csv_string(&csv).unwrap();
        assert_eq!(back.row_count(), 3);
        assert_eq!(back.column_names(), vec!["name", "score", "treated"]);
        assert_eq!(back.cell(1, "name").unwrap(), &Value::from("O'Hara, Ann"));
        assert_eq!(back.cell(2, "name").unwrap(), &Value::from("Quote\"y"));
        assert!(back.cell(2, "score").unwrap().is_null());
        assert_eq!(back.cell(0, "treated").unwrap(), &Value::Bool(true));
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let err = from_csv_string("a,b\n1,2\n3\n").unwrap_err();
        assert!(matches!(err, RelError::Csv { line: 3, .. }));
    }

    #[test]
    fn unterminated_quote_is_rejected() {
        let err = from_csv_string("a\n\"oops\n").unwrap_err();
        assert!(matches!(err, RelError::Csv { .. }));
    }

    #[test]
    fn empty_document_gives_empty_table() {
        let t = from_csv_string("").unwrap();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.column_count(), 0);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let t = from_csv_string("a,b\n1,2\n\n3,4\n").unwrap();
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn type_sniffing_on_import() {
        let t = from_csv_string("x,y,z\n1,1.5,hello\n").unwrap();
        assert_eq!(t.cell(0, "x").unwrap(), &Value::Int(1));
        assert_eq!(t.cell(0, "y").unwrap(), &Value::Float(1.5));
        assert_eq!(t.cell(0, "z").unwrap(), &Value::from("hello"));
    }
}
