//! Relational skeletons: the grounded entities and relationship tuples of an
//! instance (Section 3.1).
//!
//! The skeleton `Δ` is the part of an observed instance that excludes the
//! grounded attribute functions. Grounding relational causal rules (Def 3.5)
//! and constructing relational paths (§4.3) only consult the skeleton.
//!
//! Every entity key and relationship-tuple component is interned into a
//! [`SymbolTable`] the moment it is added: alongside the canonical `Value`
//! storage the skeleton maintains *dense mirrors* (`Vec<Sym>` per entity
//! class, `Vec<Vec<Sym>>` per relationship) and keys its positional indexes
//! and duplicate-detection sets on 4-byte symbols instead of heap values.
//! The tuple executor in [`crate::eval`] runs entirely over these mirrors.

use crate::error::{RelError, RelResult};
use crate::schema::{PredicateKind, RelationalSchema};
use crate::symbols::{Sym, SymMap, SymSet, SymbolTable};
use crate::value::{fnv1a, Value, FNV_OFFSET};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// The key of a grounded unit: a tuple of entity keys.
///
/// Units of an entity class have a single component (e.g. `["Bob"]`);
/// units of a relationship class have one component per position
/// (e.g. `["Bob", "s1"]` for `Author(Bob, s1)`).
pub type UnitKey = Vec<Value>;

/// The relational skeleton of an instance: sets of grounded entities and
/// relationship tuples, with interned dense mirrors and adjacency indexes
/// for efficient traversal.
///
/// All `#[serde(skip)]` fields are derived state. They are maintained
/// eagerly by `add_entity`/`add_relationship` and rebuilt by
/// [`Skeleton::rebuild_indexes`], which must be called after
/// deserialisation (the same contract the positional indexes have always
/// had). The symbol table is append-only and never cleared, so symbols
/// handed out earlier stay valid across index rebuilds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Skeleton {
    /// Entity class name → set of keys (insertion-ordered).
    entities: BTreeMap<String, Vec<Value>>,
    /// Relationship name → list of tuples.
    relationships: BTreeMap<String, Vec<UnitKey>>,
    /// The value interner shared by every dense mirror below.
    #[serde(skip)]
    interner: SymbolTable,
    /// Dense mirror of `entities` (aligned per class).
    #[serde(skip)]
    entity_syms: BTreeMap<String, Vec<Sym>>,
    /// Fast membership test per entity class.
    #[serde(skip)]
    entity_index: BTreeMap<String, SymSet<Sym>>,
    /// Dense mirror of `relationships` (aligned per relationship).
    #[serde(skip)]
    rel_syms: BTreeMap<String, Vec<Vec<Sym>>>,
    /// (relationship, position, symbol) → row indexes into
    /// `relationships[rel]`.
    #[serde(skip)]
    rel_index: HashMap<(String, usize), SymMap<Sym, Vec<u32>>>,
    /// Authoritative per-relationship membership sets for duplicate
    /// detection, keyed on interned tuples (no `UnitKey` clones).
    #[serde(skip)]
    rel_set: BTreeMap<String, SymSet<Vec<Sym>>>,
}

impl Skeleton {
    /// Create an empty skeleton.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a grounded entity with key `key` to class `entity`.
    /// Duplicate keys are ignored (idempotent).
    pub fn add_entity(&mut self, entity: &str, key: Value) {
        // Resynchronise the derived mirror if it is stale (deserialisation).
        let stored = self.entities.entry(entity.to_string()).or_default().len();
        let mirrored = self.entity_syms.get(entity).map_or(0, Vec::len);
        if mirrored != stored {
            self.resync_entity(entity);
        }
        let sym = self.interner.intern(&key);
        if self
            .entity_index
            .entry(entity.to_string())
            .or_default()
            .insert(sym)
        {
            self.entities
                .entry(entity.to_string())
                .or_default()
                .push(key);
            self.entity_syms
                .entry(entity.to_string())
                .or_default()
                .push(sym);
        }
    }

    /// Add a grounded relationship tuple. Duplicates are stored only once.
    ///
    /// Duplicate detection is authoritative: it consults a per-relationship
    /// membership set of interned tuples rather than the positional index,
    /// so it keeps working for zero-arity tuples and after deserialisation
    /// (where the derived indexes start out empty and are resynchronised
    /// lazily here).
    pub fn add_relationship(&mut self, rel: &str, tuple: UnitKey) {
        let stored = self.relationships.entry(rel.to_string()).or_default().len();
        let mirrored = self.rel_syms.get(rel).map_or(0, Vec::len);
        if mirrored != stored {
            self.resync_relationship(rel);
        }
        let syms: Vec<Sym> = tuple.iter().map(|v| self.interner.intern(v)).collect();
        if !self
            .rel_set
            .entry(rel.to_string())
            .or_default()
            .insert(syms.clone())
        {
            return;
        }
        let rows = self
            .relationships
            .get_mut(rel)
            .expect("entry created above");
        let row_id = u32::try_from(rows.len()).expect("more than u32::MAX tuples");
        rows.push(tuple);
        for (pos, &sym) in syms.iter().enumerate() {
            self.rel_index
                .entry((rel.to_string(), pos))
                .or_default()
                .entry(sym)
                .or_default()
                .push(row_id);
        }
        self.rel_syms.entry(rel.to_string()).or_default().push(syms);
    }

    /// Remove a grounded relationship tuple. Returns `true` if the tuple
    /// was present (and removed), `false` if it was absent.
    ///
    /// Removal shifts the row ids of every later tuple of `rel`, so the
    /// derived positional state for that relationship is rebuilt from
    /// canonical storage. The interner is append-only and untouched:
    /// symbols issued earlier stay valid.
    pub fn remove_relationship(&mut self, rel: &str, tuple: &[Value]) -> bool {
        let Some(rows) = self.relationships.get_mut(rel) else {
            return false;
        };
        let Some(pos) = rows.iter().position(|t| t.as_slice() == tuple) else {
            return false;
        };
        rows.remove(pos);
        self.resync_relationship(rel);
        true
    }

    /// Rebuild the derived state of one entity class from canonical storage.
    fn resync_entity(&mut self, entity: &str) {
        let keys = self.entities.get(entity).cloned().unwrap_or_default();
        let syms: Vec<Sym> = keys.iter().map(|k| self.interner.intern(k)).collect();
        self.entity_index
            .insert(entity.to_string(), syms.iter().copied().collect());
        self.entity_syms.insert(entity.to_string(), syms);
    }

    /// Rebuild the derived state of one relationship from canonical storage.
    fn resync_relationship(&mut self, rel: &str) {
        let tuples = self.relationships.get(rel).cloned().unwrap_or_default();
        let syms: Vec<Vec<Sym>> = tuples
            .iter()
            .map(|t| t.iter().map(|v| self.interner.intern(v)).collect())
            .collect();
        self.rel_index.retain(|(r, _), _| r != rel);
        for (row_id, tuple) in syms.iter().enumerate() {
            for (pos, &sym) in tuple.iter().enumerate() {
                self.rel_index
                    .entry((rel.to_string(), pos))
                    .or_default()
                    .entry(sym)
                    .or_default()
                    .push(row_id as u32);
            }
        }
        self.rel_set
            .insert(rel.to_string(), syms.iter().cloned().collect());
        self.rel_syms.insert(rel.to_string(), syms);
    }

    /// The skeleton's value interner. Append-only: symbols stay valid for
    /// the lifetime of the skeleton (including across
    /// [`Skeleton::rebuild_indexes`]).
    pub fn interner(&self) -> &SymbolTable {
        &self.interner
    }

    /// Whether entity class `entity` contains `key`.
    pub fn has_entity(&self, entity: &str, key: &Value) -> bool {
        self.interner
            .get(key)
            .is_some_and(|sym| self.has_entity_sym(entity, sym))
    }

    /// Whether entity class `entity` contains the interned key `sym`.
    pub fn has_entity_sym(&self, entity: &str, sym: Sym) -> bool {
        self.entity_index
            .get(entity)
            .is_some_and(|s| s.contains(&sym))
    }

    /// All keys of entity class `entity` (empty slice if the class is empty).
    pub fn entity_keys(&self, entity: &str) -> &[Value] {
        self.entities
            .get(entity)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Dense mirror of [`Skeleton::entity_keys`]: the interned symbols of
    /// every key of `entity`, in stored order.
    pub fn entity_syms(&self, entity: &str) -> &[Sym] {
        self.entity_syms
            .get(entity)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of grounded entities in class `entity`.
    pub fn entity_count(&self, entity: &str) -> usize {
        self.entities.get(entity).map_or(0, Vec::len)
    }

    /// All tuples of relationship `rel`.
    pub fn relationship_tuples(&self, rel: &str) -> &[UnitKey] {
        self.relationships
            .get(rel)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Dense mirror of [`Skeleton::relationship_tuples`]: the interned
    /// tuples of `rel`, aligned row for row with the `Value` storage.
    pub fn relationship_syms(&self, rel: &str) -> &[Vec<Sym>] {
        self.rel_syms.get(rel).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of tuples of relationship `rel`.
    pub fn relationship_count(&self, rel: &str) -> usize {
        self.relationships.get(rel).map_or(0, Vec::len)
    }

    /// Tuples of `rel` whose component at `position` equals `key`.
    pub fn relationship_tuples_with(
        &self,
        rel: &str,
        position: usize,
        key: &Value,
    ) -> Vec<&UnitKey> {
        let Some(sym) = self.interner.get(key) else {
            return Vec::new();
        };
        let table = self.relationship_tuples(rel);
        self.rows_with(rel, position, sym)
            .iter()
            .map(|&r| &table[r as usize])
            .collect()
    }

    /// Row indexes of `rel` whose component at `position` is the interned
    /// symbol `sym` (the dense positional probe of the tuple executor).
    pub fn rows_with(&self, rel: &str, position: usize, sym: Sym) -> &[u32] {
        self.positional_index(rel, position)
            .and_then(|idx| idx.get(&sym))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The whole positional index of `(rel, position)`: symbol → row ids.
    /// Executors resolve this once per plan step so the per-row probe is a
    /// single symbol hash (no per-row key construction).
    pub fn positional_index(&self, rel: &str, position: usize) -> Option<&SymMap<Sym, Vec<u32>>> {
        self.rel_index.get(&(rel.to_string(), position))
    }

    /// Number of distinct values appearing at `position` of relationship
    /// `rel`. Used by the query planner as a selectivity estimate: a hash
    /// probe on this position returns `count / distinct` tuples on average.
    pub fn distinct_count(&self, rel: &str, position: usize) -> usize {
        self.rel_index
            .get(&(rel.to_string(), position))
            .map_or(0, SymMap::len)
    }

    /// Whether any tuple of `rel` has value `key` at `position` (an O(1)
    /// semi-join membership test against the positional index).
    pub fn contains_at(&self, rel: &str, position: usize, key: &Value) -> bool {
        self.interner
            .get(key)
            .is_some_and(|sym| self.contains_sym_at(rel, position, sym))
    }

    /// Dense variant of [`Skeleton::contains_at`] for an interned symbol.
    pub fn contains_sym_at(&self, rel: &str, position: usize, sym: Sym) -> bool {
        self.rel_index
            .get(&(rel.to_string(), position))
            .is_some_and(|idx| idx.contains_key(&sym))
    }

    /// Whether relationship `rel` contains exactly `tuple`.
    pub fn has_relationship(&self, rel: &str, tuple: &[Value]) -> bool {
        let syms: Option<Vec<Sym>> = tuple.iter().map(|v| self.interner.get(v)).collect();
        match syms {
            Some(syms) => self.has_relationship_syms(rel, &syms),
            None => false,
        }
    }

    /// Dense variant of [`Skeleton::has_relationship`] for interned tuples.
    pub fn has_relationship_syms(&self, rel: &str, tuple: &[Sym]) -> bool {
        self.rel_set.get(rel).is_some_and(|s| s.contains(tuple))
    }

    /// Grounded units of a predicate: single-component keys for entities,
    /// full tuples for relationships.
    pub fn units_of(&self, schema: &RelationalSchema, predicate: &str) -> RelResult<Vec<UnitKey>> {
        match schema.require_predicate(predicate)? {
            PredicateKind::Entity => Ok(self
                .entity_keys(predicate)
                .iter()
                .map(|k| vec![k.clone()])
                .collect()),
            PredicateKind::Relationship => Ok(self.relationship_tuples(predicate).to_vec()),
        }
    }

    /// Validate that every relationship tuple references existing entities
    /// and has the declared arity.
    pub fn validate(&self, schema: &RelationalSchema) -> RelResult<()> {
        for (rel, tuples) in &self.relationships {
            let positions = schema
                .predicate_positions(rel)
                .ok_or_else(|| RelError::UnknownPredicate(rel.clone()))?;
            for tuple in tuples {
                if tuple.len() != positions.len() {
                    return Err(RelError::ArityMismatch {
                        predicate: rel.clone(),
                        expected: positions.len(),
                        actual: tuple.len(),
                    });
                }
                for (entity, key) in positions.iter().zip(tuple.iter()) {
                    if !self.has_entity(entity, key) {
                        return Err(RelError::DanglingReference {
                            rel: rel.clone(),
                            entity: entity.clone(),
                            key: key.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Total number of grounded entities across all classes.
    pub fn total_entities(&self) -> usize {
        self.entities.values().map(Vec::len).sum()
    }

    /// Total number of relationship tuples across all classes.
    pub fn total_relationship_tuples(&self) -> usize {
        self.relationships.values().map(Vec::len).sum()
    }

    /// Rebuild the dense mirrors and positional indexes from the canonical
    /// `Value` storage (needed after deserialisation, since all derived
    /// state is skipped by serde).
    ///
    /// The interner is *extended*, never cleared: symbols issued before the
    /// rebuild keep their meaning, so caches keyed on symbols (see
    /// [`crate::index::IndexCache`]) are not silently remapped.
    pub fn rebuild_indexes(&mut self) {
        let classes: Vec<String> = self.entities.keys().cloned().collect();
        for entity in classes {
            self.resync_entity(&entity);
        }
        let rels: Vec<String> = self.relationships.keys().cloned().collect();
        for rel in rels {
            self.resync_relationship(&rel);
        }
    }

    /// A stable 64-bit fingerprint of the skeleton's content (every entity
    /// key and relationship tuple, per class, in stored order).
    ///
    /// Two skeletons with the same content produce the same fingerprint in
    /// any process on any platform (the hash is an explicit FNV-1a over a
    /// canonical byte rendering fed by [`Value::fold_key_bytes`], not a
    /// `RandomState` hash), which makes it usable as a grounding-cache key:
    /// a cache entry keyed by `(rule, fingerprint)` stays valid exactly as
    /// long as the skeleton it was computed from is unchanged. Content
    /// insertions always change the fingerprint; permuting insertion order
    /// may change it too, which for a cache key is merely a conservative
    /// miss.
    pub fn fingerprint(&self) -> u64 {
        let mix = fnv1a;
        let mut h = FNV_OFFSET;
        for (entity, keys) in &self.entities {
            mix(&mut h, entity.as_bytes());
            mix(&mut h, &[0xff]);
            for key in keys {
                key.fold_key_bytes(&mut |bytes| mix(&mut h, bytes));
                mix(&mut h, &[0xfe]);
            }
        }
        for (rel, tuples) in &self.relationships {
            mix(&mut h, rel.as_bytes());
            mix(&mut h, &[0xfd]);
            for tuple in tuples {
                for v in tuple {
                    v.fold_key_bytes(&mut |bytes| mix(&mut h, bytes));
                    mix(&mut h, &[0xfc]);
                }
                mix(&mut h, &[0xfb]);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationalSchema;

    fn paper_skeleton() -> (RelationalSchema, Skeleton) {
        let schema = RelationalSchema::review_example();
        let mut sk = Skeleton::new();
        for p in ["Bob", "Carlos", "Eva"] {
            sk.add_entity("Person", Value::from(p));
        }
        for s in ["s1", "s2", "s3"] {
            sk.add_entity("Submission", Value::from(s));
        }
        for c in ["ConfDB", "ConfAI"] {
            sk.add_entity("Conference", Value::from(c));
        }
        for (a, s) in [
            ("Bob", "s1"),
            ("Eva", "s1"),
            ("Eva", "s2"),
            ("Eva", "s3"),
            ("Carlos", "s3"),
        ] {
            sk.add_relationship("Author", vec![Value::from(a), Value::from(s)]);
        }
        for (s, c) in [("s1", "ConfDB"), ("s2", "ConfAI"), ("s3", "ConfAI")] {
            sk.add_relationship("Submitted", vec![Value::from(s), Value::from(c)]);
        }
        (schema, sk)
    }

    #[test]
    fn counts_match_figure_2() {
        let (schema, sk) = paper_skeleton();
        assert_eq!(sk.entity_count("Person"), 3);
        assert_eq!(sk.entity_count("Submission"), 3);
        assert_eq!(sk.relationship_count("Author"), 5);
        assert_eq!(sk.relationship_count("Submitted"), 3);
        assert!(sk.validate(&schema).is_ok());
        assert_eq!(sk.total_entities(), 8);
        assert_eq!(sk.total_relationship_tuples(), 8);
    }

    #[test]
    fn duplicate_entities_and_tuples_are_deduplicated() {
        let mut sk = Skeleton::new();
        sk.add_entity("Person", Value::from("Bob"));
        sk.add_entity("Person", Value::from("Bob"));
        assert_eq!(sk.entity_count("Person"), 1);
        sk.add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")]);
        sk.add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")]);
        assert_eq!(sk.relationship_count("Author"), 1);
    }

    #[test]
    fn positional_lookup() {
        let (_, sk) = paper_skeleton();
        let evas = sk.relationship_tuples_with("Author", 0, &Value::from("Eva"));
        assert_eq!(evas.len(), 3);
        let s3 = sk.relationship_tuples_with("Author", 1, &Value::from("s3"));
        assert_eq!(s3.len(), 2);
        assert!(sk
            .relationship_tuples_with("Author", 0, &Value::from("Nobody"))
            .is_empty());
    }

    #[test]
    fn dense_mirrors_align_with_value_storage() {
        let (_, sk) = paper_skeleton();
        let interner = sk.interner();
        // Entity mirrors resolve back to the stored keys, row for row.
        for entity in ["Person", "Submission", "Conference"] {
            let keys = sk.entity_keys(entity);
            let syms = sk.entity_syms(entity);
            assert_eq!(keys.len(), syms.len());
            for (key, &sym) in keys.iter().zip(syms) {
                assert_eq!(interner.value(sym), key);
                assert!(sk.has_entity_sym(entity, sym));
            }
        }
        // Relationship mirrors too.
        let tuples = sk.relationship_tuples("Author");
        let syms = sk.relationship_syms("Author");
        assert_eq!(tuples.len(), syms.len());
        for (tuple, row) in tuples.iter().zip(syms) {
            for (v, &s) in tuple.iter().zip(row) {
                assert_eq!(interner.value(s), v);
            }
            assert!(sk.has_relationship_syms("Author", row));
        }
        // Dense positional probe agrees with the Value-level one.
        let eva = interner.get(&Value::from("Eva")).unwrap();
        assert_eq!(sk.rows_with("Author", 0, eva).len(), 3);
        assert!(sk.contains_sym_at("Author", 0, eva));
        assert!(!sk.contains_sym_at("Submitted", 0, eva));
    }

    #[test]
    fn validation_catches_dangling_and_arity() {
        let schema = RelationalSchema::review_example();
        let mut sk = Skeleton::new();
        sk.add_entity("Person", Value::from("Bob"));
        sk.add_relationship("Author", vec![Value::from("Bob"), Value::from("ghost")]);
        assert!(matches!(
            sk.validate(&schema),
            Err(RelError::DanglingReference { .. })
        ));

        let mut sk2 = Skeleton::new();
        sk2.add_entity("Person", Value::from("Bob"));
        sk2.add_relationship("Author", vec![Value::from("Bob")]);
        assert!(matches!(
            sk2.validate(&schema),
            Err(RelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn units_of_entity_and_relationship() {
        let (schema, sk) = paper_skeleton();
        let people = sk.units_of(&schema, "Person").unwrap();
        assert_eq!(people.len(), 3);
        assert_eq!(people[0].len(), 1);
        let authorships = sk.units_of(&schema, "Author").unwrap();
        assert_eq!(authorships.len(), 5);
        assert_eq!(authorships[0].len(), 2);
    }

    #[test]
    fn dedup_is_authoritative_without_a_position_0_index() {
        // Regression: duplicate detection used to consult only the
        // position-0 positional index, so tuples that never populate it
        // (zero-arity tuples) or a skeleton whose derived indexes are empty
        // were silently stored twice.
        let mut sk = Skeleton::new();
        sk.add_relationship("Marker", vec![]);
        sk.add_relationship("Marker", vec![]);
        assert_eq!(sk.relationship_count("Marker"), 1);

        // Stale derived state (as after deserialisation): wipe the indexes
        // and membership sets, then re-add an existing tuple.
        let mut sk = Skeleton::new();
        sk.add_entity("Person", Value::from("Bob"));
        sk.add_entity("Submission", Value::from("s1"));
        sk.add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")]);
        sk.rel_index.clear();
        sk.rel_set.clear();
        sk.rel_syms.clear();
        sk.add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")]);
        assert_eq!(sk.relationship_count("Author"), 1);
        // The lazy resync restored the dense state too.
        assert_eq!(sk.relationship_syms("Author").len(), 1);
        assert_eq!(
            sk.relationship_tuples_with("Author", 0, &Value::from("Bob"))
                .len(),
            1
        );
    }

    #[test]
    fn remove_relationship_resyncs_derived_state() {
        let (schema, mut sk) = paper_skeleton();
        let fp = sk.fingerprint();
        assert!(sk.remove_relationship("Author", &[Value::from("Eva"), Value::from("s2")]));
        assert_eq!(sk.relationship_count("Author"), 4);
        assert_ne!(sk.fingerprint(), fp);
        // Positional indexes, membership sets, and dense mirrors all agree.
        assert_eq!(
            sk.relationship_tuples_with("Author", 0, &Value::from("Eva"))
                .len(),
            2
        );
        assert!(!sk.has_relationship("Author", &[Value::from("Eva"), Value::from("s2")]));
        assert_eq!(sk.relationship_syms("Author").len(), 4);
        assert!(sk.validate(&schema).is_ok());
        // The tuple can be re-added (dedupe set was rebuilt correctly).
        sk.add_relationship("Author", vec![Value::from("Eva"), Value::from("s2")]);
        assert_eq!(sk.relationship_count("Author"), 5);
        // Removing an absent tuple or unknown relationship is a no-op.
        assert!(!sk.remove_relationship("Author", &[Value::from("Bob"), Value::from("s9")]));
        assert!(!sk.remove_relationship("Nope", &[Value::from("Bob")]));
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let (_, sk) = paper_skeleton();
        let fp = sk.fingerprint();
        // Stable across clones and index rebuilds (derived state is not hashed).
        let mut clone = sk.clone();
        assert_eq!(clone.fingerprint(), fp);
        clone.rebuild_indexes();
        assert_eq!(clone.fingerprint(), fp);
        // Re-adding existing content is a no-op for the fingerprint.
        clone.add_entity("Person", Value::from("Bob"));
        clone.add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")]);
        assert_eq!(clone.fingerprint(), fp);
        // Any content change changes it.
        let mut grown = sk.clone();
        grown.add_entity("Person", Value::from("Dana"));
        assert_ne!(grown.fingerprint(), fp);
        let mut rewired = sk.clone();
        rewired.add_relationship("Author", vec![Value::from("Carlos"), Value::from("s1")]);
        assert_ne!(rewired.fingerprint(), fp);
        // The empty skeleton has its own fingerprint.
        assert_ne!(Skeleton::new().fingerprint(), fp);
        assert_eq!(Skeleton::new().fingerprint(), Skeleton::new().fingerprint());
    }

    #[test]
    fn rebuild_indexes_is_idempotent_and_keeps_symbols_valid() {
        let (_, mut sk) = paper_skeleton();
        let eva_before = sk.interner().get(&Value::from("Eva")).unwrap();
        sk.rebuild_indexes();
        sk.rebuild_indexes();
        assert_eq!(
            sk.relationship_tuples_with("Author", 0, &Value::from("Eva"))
                .len(),
            3
        );
        // Symbols issued before the rebuild still resolve (append-only).
        assert_eq!(sk.interner().get(&Value::from("Eva")), Some(eva_before));
        assert_eq!(sk.interner().value(eva_before), &Value::from("Eva"));
    }
}
