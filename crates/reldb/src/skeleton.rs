//! Relational skeletons: the grounded entities and relationship tuples of an
//! instance (Section 3.1).
//!
//! The skeleton `Δ` is the part of an observed instance that excludes the
//! grounded attribute functions. Grounding relational causal rules (Def 3.5)
//! and constructing relational paths (§4.3) only consult the skeleton.

use crate::error::{RelError, RelResult};
use crate::schema::{PredicateKind, RelationalSchema};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// The key of a grounded unit: a tuple of entity keys.
///
/// Units of an entity class have a single component (e.g. `["Bob"]`);
/// units of a relationship class have one component per position
/// (e.g. `["Bob", "s1"]` for `Author(Bob, s1)`).
pub type UnitKey = Vec<Value>;

/// The relational skeleton of an instance: sets of grounded entities and
/// relationship tuples, with adjacency indexes for efficient traversal.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Skeleton {
    /// Entity class name → set of keys (insertion-ordered).
    entities: BTreeMap<String, Vec<Value>>,
    /// Fast membership test per entity class.
    entity_index: BTreeMap<String, HashSet<Value>>,
    /// Relationship name → list of tuples.
    relationships: BTreeMap<String, Vec<UnitKey>>,
    /// (relationship, position, key) → row indexes into `relationships[rel]`.
    #[serde(skip)]
    rel_index: HashMap<(String, usize), HashMap<Value, Vec<usize>>>,
    /// Authoritative per-relationship membership sets for duplicate
    /// detection (derived state, resynchronised lazily when stale).
    #[serde(skip)]
    rel_set: BTreeMap<String, HashSet<UnitKey>>,
}

impl Skeleton {
    /// Create an empty skeleton.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a grounded entity with key `key` to class `entity`.
    /// Duplicate keys are ignored (idempotent).
    pub fn add_entity(&mut self, entity: &str, key: Value) {
        let idx = self.entity_index.entry(entity.to_string()).or_default();
        if idx.insert(key.clone()) {
            self.entities
                .entry(entity.to_string())
                .or_default()
                .push(key);
        }
    }

    /// Add a grounded relationship tuple. Duplicates are stored only once.
    ///
    /// Duplicate detection is authoritative: it consults a per-relationship
    /// membership set rather than the positional index, so it keeps working
    /// for zero-arity tuples and after deserialisation (where the derived
    /// indexes start out empty and are resynchronised lazily here).
    pub fn add_relationship(&mut self, rel: &str, tuple: UnitKey) {
        let existing = self.relationships.entry(rel.to_string()).or_default();
        let members = self.rel_set.entry(rel.to_string()).or_default();
        if members.len() != existing.len() {
            *members = existing.iter().cloned().collect();
        }
        if !members.insert(tuple.clone()) {
            return;
        }
        let rows = self
            .relationships
            .get_mut(rel)
            .expect("entry created above");
        let row_id = rows.len();
        rows.push(tuple.clone());
        for (pos, v) in tuple.into_iter().enumerate() {
            self.rel_index
                .entry((rel.to_string(), pos))
                .or_default()
                .entry(v)
                .or_default()
                .push(row_id);
        }
    }

    /// Whether entity class `entity` contains `key`.
    pub fn has_entity(&self, entity: &str, key: &Value) -> bool {
        self.entity_index
            .get(entity)
            .is_some_and(|s| s.contains(key))
    }

    /// All keys of entity class `entity` (empty slice if the class is empty).
    pub fn entity_keys(&self, entity: &str) -> &[Value] {
        self.entities
            .get(entity)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of grounded entities in class `entity`.
    pub fn entity_count(&self, entity: &str) -> usize {
        self.entities.get(entity).map_or(0, Vec::len)
    }

    /// All tuples of relationship `rel`.
    pub fn relationship_tuples(&self, rel: &str) -> &[UnitKey] {
        self.relationships
            .get(rel)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of tuples of relationship `rel`.
    pub fn relationship_count(&self, rel: &str) -> usize {
        self.relationships.get(rel).map_or(0, Vec::len)
    }

    /// Tuples of `rel` whose component at `position` equals `key`.
    pub fn relationship_tuples_with(
        &self,
        rel: &str,
        position: usize,
        key: &Value,
    ) -> Vec<&UnitKey> {
        let Some(index) = self.rel_index.get(&(rel.to_string(), position)) else {
            return Vec::new();
        };
        let Some(rows) = index.get(key) else {
            return Vec::new();
        };
        let table = &self.relationships[rel];
        rows.iter().map(|&r| &table[r]).collect()
    }

    /// Number of distinct values appearing at `position` of relationship
    /// `rel`. Used by the query planner as a selectivity estimate: a hash
    /// probe on this position returns `count / distinct` tuples on average.
    pub fn distinct_count(&self, rel: &str, position: usize) -> usize {
        self.rel_index
            .get(&(rel.to_string(), position))
            .map_or(0, HashMap::len)
    }

    /// Whether any tuple of `rel` has value `key` at `position` (an O(1)
    /// semi-join membership test against the positional index).
    pub fn contains_at(&self, rel: &str, position: usize, key: &Value) -> bool {
        self.rel_index
            .get(&(rel.to_string(), position))
            .is_some_and(|idx| idx.contains_key(key))
    }

    /// Whether relationship `rel` contains exactly `tuple`.
    pub fn has_relationship(&self, rel: &str, tuple: &[Value]) -> bool {
        match tuple.first() {
            Some(first) => self
                .relationship_tuples_with(rel, 0, first)
                .iter()
                .any(|t| t.as_slice() == tuple),
            // Zero-arity tuples never populate a positional index.
            None => self
                .relationships
                .get(rel)
                .is_some_and(|ts| ts.iter().any(|t| t.is_empty())),
        }
    }

    /// Grounded units of a predicate: single-component keys for entities,
    /// full tuples for relationships.
    pub fn units_of(&self, schema: &RelationalSchema, predicate: &str) -> RelResult<Vec<UnitKey>> {
        match schema.require_predicate(predicate)? {
            PredicateKind::Entity => Ok(self
                .entity_keys(predicate)
                .iter()
                .map(|k| vec![k.clone()])
                .collect()),
            PredicateKind::Relationship => Ok(self.relationship_tuples(predicate).to_vec()),
        }
    }

    /// Validate that every relationship tuple references existing entities
    /// and has the declared arity.
    pub fn validate(&self, schema: &RelationalSchema) -> RelResult<()> {
        for (rel, tuples) in &self.relationships {
            let positions = schema
                .predicate_positions(rel)
                .ok_or_else(|| RelError::UnknownPredicate(rel.clone()))?;
            for tuple in tuples {
                if tuple.len() != positions.len() {
                    return Err(RelError::ArityMismatch {
                        predicate: rel.clone(),
                        expected: positions.len(),
                        actual: tuple.len(),
                    });
                }
                for (entity, key) in positions.iter().zip(tuple.iter()) {
                    if !self.has_entity(entity, key) {
                        return Err(RelError::DanglingReference {
                            rel: rel.clone(),
                            entity: entity.clone(),
                            key: key.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Total number of grounded entities across all classes.
    pub fn total_entities(&self) -> usize {
        self.entities.values().map(Vec::len).sum()
    }

    /// Total number of relationship tuples across all classes.
    pub fn total_relationship_tuples(&self) -> usize {
        self.relationships.values().map(Vec::len).sum()
    }

    /// Rebuild the positional indexes (needed after deserialisation, since
    /// the index is skipped by serde).
    pub fn rebuild_indexes(&mut self) {
        self.rel_index.clear();
        self.rel_set.clear();
        for (rel, tuples) in &self.relationships {
            self.rel_set
                .insert(rel.clone(), tuples.iter().cloned().collect());
            for (row_id, tuple) in tuples.iter().enumerate() {
                for (pos, v) in tuple.iter().enumerate() {
                    self.rel_index
                        .entry((rel.clone(), pos))
                        .or_default()
                        .entry(v.clone())
                        .or_default()
                        .push(row_id);
                }
            }
        }
        self.entity_index.clear();
        for (ent, keys) in &self.entities {
            self.entity_index
                .insert(ent.clone(), keys.iter().cloned().collect());
        }
    }

    /// A stable 64-bit fingerprint of the skeleton's content (every entity
    /// key and relationship tuple, per class, in stored order).
    ///
    /// Two skeletons with the same content produce the same fingerprint in
    /// any process on any platform (the hash is an explicit FNV-1a over a
    /// canonical byte rendering, not a `RandomState` hash), which makes it
    /// usable as a grounding-cache key: a cache entry keyed by
    /// `(rule, fingerprint)` stays valid exactly as long as the skeleton it
    /// was computed from is unchanged. Content insertions always change the
    /// fingerprint; permuting insertion order may change it too, which for a
    /// cache key is merely a conservative miss.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(PRIME);
            }
        }
        let mut h = OFFSET;
        for (entity, keys) in &self.entities {
            mix(&mut h, entity.as_bytes());
            mix(&mut h, &[0xff]);
            for key in keys {
                mix(&mut h, key.key_repr().as_bytes());
                mix(&mut h, &[0xfe]);
            }
        }
        for (rel, tuples) in &self.relationships {
            mix(&mut h, rel.as_bytes());
            mix(&mut h, &[0xfd]);
            for tuple in tuples {
                for v in tuple {
                    mix(&mut h, v.key_repr().as_bytes());
                    mix(&mut h, &[0xfc]);
                }
                mix(&mut h, &[0xfb]);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationalSchema;

    fn paper_skeleton() -> (RelationalSchema, Skeleton) {
        let schema = RelationalSchema::review_example();
        let mut sk = Skeleton::new();
        for p in ["Bob", "Carlos", "Eva"] {
            sk.add_entity("Person", Value::from(p));
        }
        for s in ["s1", "s2", "s3"] {
            sk.add_entity("Submission", Value::from(s));
        }
        for c in ["ConfDB", "ConfAI"] {
            sk.add_entity("Conference", Value::from(c));
        }
        for (a, s) in [
            ("Bob", "s1"),
            ("Eva", "s1"),
            ("Eva", "s2"),
            ("Eva", "s3"),
            ("Carlos", "s3"),
        ] {
            sk.add_relationship("Author", vec![Value::from(a), Value::from(s)]);
        }
        for (s, c) in [("s1", "ConfDB"), ("s2", "ConfAI"), ("s3", "ConfAI")] {
            sk.add_relationship("Submitted", vec![Value::from(s), Value::from(c)]);
        }
        (schema, sk)
    }

    #[test]
    fn counts_match_figure_2() {
        let (schema, sk) = paper_skeleton();
        assert_eq!(sk.entity_count("Person"), 3);
        assert_eq!(sk.entity_count("Submission"), 3);
        assert_eq!(sk.relationship_count("Author"), 5);
        assert_eq!(sk.relationship_count("Submitted"), 3);
        assert!(sk.validate(&schema).is_ok());
        assert_eq!(sk.total_entities(), 8);
        assert_eq!(sk.total_relationship_tuples(), 8);
    }

    #[test]
    fn duplicate_entities_and_tuples_are_deduplicated() {
        let mut sk = Skeleton::new();
        sk.add_entity("Person", Value::from("Bob"));
        sk.add_entity("Person", Value::from("Bob"));
        assert_eq!(sk.entity_count("Person"), 1);
        sk.add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")]);
        sk.add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")]);
        assert_eq!(sk.relationship_count("Author"), 1);
    }

    #[test]
    fn positional_lookup() {
        let (_, sk) = paper_skeleton();
        let evas = sk.relationship_tuples_with("Author", 0, &Value::from("Eva"));
        assert_eq!(evas.len(), 3);
        let s3 = sk.relationship_tuples_with("Author", 1, &Value::from("s3"));
        assert_eq!(s3.len(), 2);
        assert!(sk
            .relationship_tuples_with("Author", 0, &Value::from("Nobody"))
            .is_empty());
    }

    #[test]
    fn validation_catches_dangling_and_arity() {
        let schema = RelationalSchema::review_example();
        let mut sk = Skeleton::new();
        sk.add_entity("Person", Value::from("Bob"));
        sk.add_relationship("Author", vec![Value::from("Bob"), Value::from("ghost")]);
        assert!(matches!(
            sk.validate(&schema),
            Err(RelError::DanglingReference { .. })
        ));

        let mut sk2 = Skeleton::new();
        sk2.add_entity("Person", Value::from("Bob"));
        sk2.add_relationship("Author", vec![Value::from("Bob")]);
        assert!(matches!(
            sk2.validate(&schema),
            Err(RelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn units_of_entity_and_relationship() {
        let (schema, sk) = paper_skeleton();
        let people = sk.units_of(&schema, "Person").unwrap();
        assert_eq!(people.len(), 3);
        assert_eq!(people[0].len(), 1);
        let authorships = sk.units_of(&schema, "Author").unwrap();
        assert_eq!(authorships.len(), 5);
        assert_eq!(authorships[0].len(), 2);
    }

    #[test]
    fn dedup_is_authoritative_without_a_position_0_index() {
        // Regression: duplicate detection used to consult only the
        // position-0 positional index, so tuples that never populate it
        // (zero-arity tuples) or a skeleton whose derived indexes are empty
        // were silently stored twice.
        let mut sk = Skeleton::new();
        sk.add_relationship("Marker", vec![]);
        sk.add_relationship("Marker", vec![]);
        assert_eq!(sk.relationship_count("Marker"), 1);

        // Stale derived state (as after deserialisation): wipe the indexes
        // and membership sets, then re-add an existing tuple.
        let mut sk = Skeleton::new();
        sk.add_entity("Person", Value::from("Bob"));
        sk.add_entity("Submission", Value::from("s1"));
        sk.add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")]);
        sk.rel_index.clear();
        sk.rel_set.clear();
        sk.add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")]);
        assert_eq!(sk.relationship_count("Author"), 1);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let (_, sk) = paper_skeleton();
        let fp = sk.fingerprint();
        // Stable across clones and index rebuilds (derived state is not hashed).
        let mut clone = sk.clone();
        assert_eq!(clone.fingerprint(), fp);
        clone.rebuild_indexes();
        assert_eq!(clone.fingerprint(), fp);
        // Re-adding existing content is a no-op for the fingerprint.
        clone.add_entity("Person", Value::from("Bob"));
        clone.add_relationship("Author", vec![Value::from("Bob"), Value::from("s1")]);
        assert_eq!(clone.fingerprint(), fp);
        // Any content change changes it.
        let mut grown = sk.clone();
        grown.add_entity("Person", Value::from("Dana"));
        assert_ne!(grown.fingerprint(), fp);
        let mut rewired = sk.clone();
        rewired.add_relationship("Author", vec![Value::from("Carlos"), Value::from("s1")]);
        assert_ne!(rewired.fingerprint(), fp);
        // The empty skeleton has its own fingerprint.
        assert_ne!(Skeleton::new().fingerprint(), fp);
        assert_eq!(Skeleton::new().fingerprint(), Skeleton::new().fingerprint());
    }

    #[test]
    fn rebuild_indexes_is_idempotent() {
        let (_, mut sk) = paper_skeleton();
        sk.rebuild_indexes();
        sk.rebuild_indexes();
        assert_eq!(
            sk.relationship_tuples_with("Author", 0, &Value::from("Eva"))
                .len(),
            3
        );
    }
}
