//! Cost-based planning of conjunctive queries.
//!
//! Grounding a relational causal rule evaluates its `WHERE` condition — a
//! conjunctive query — over the skeleton. The planner turns the query into
//! an explicit, inspectable [`Plan`]: a greedy most-selective-first join
//! order in which every atom is annotated with an access path (full scan,
//! positional hash probe, or attribute-index fetch), scans are annotated
//! with semi-join pruning passes against co-occurring atoms, and equality
//! filters are pinned to the earliest step at which their variables are
//! bound.
//!
//! The cost model is deliberately simple and fully deterministic: an atom's
//! estimated output is its relation cardinality discounted by the distinct
//! count of every already-bound position (independence assumption). Ties
//! break on the original atom order, so the same query over the same
//! skeleton always produces the same plan — which is what makes the plan
//! snapshot tests meaningful.

use crate::error::{RelError, RelResult};
use crate::index::IndexCache;
use crate::instance::Instance;
use crate::query::{Atom, ConjunctiveQuery, Term};
use crate::schema::{PredicateKind, RelationalSchema};
use crate::skeleton::Skeleton;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// An equality restriction `Attr[args] = value` evaluated against the
/// instance's attribute assignments during query execution.
///
/// Filters subsume the equality comparisons of CaRL `WHERE` clauses: a
/// binding satisfies the filter iff every argument resolves and the
/// instance assigns exactly `value` to the resolved unit (missing
/// assignments never satisfy a filter).
#[derive(Debug, Clone, PartialEq)]
pub struct EqFilter {
    /// Attribute name.
    pub attr: String,
    /// Argument terms identifying the unit.
    pub args: Vec<Term>,
    /// Required attribute value.
    pub value: Value,
}

impl fmt::Display for EqFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.args.iter().map(|t| t.to_string()).collect();
        write!(
            f,
            "{}[{}] = {}",
            self.attr,
            args.join(", "),
            fmt_value(&self.value)
        )
    }
}

/// Render a value as it would appear in surface syntax (strings quoted).
fn fmt_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("\"{s}\""),
        other => other.to_string(),
    }
}

/// How one atom's candidate tuples are produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Access {
    /// Enumerate every key of an entity class.
    ScanEntity,
    /// O(1) membership check of an already-bound key in an entity class.
    ProbeEntity,
    /// Enumerate every tuple of a relationship.
    ScanRelationship,
    /// Hash-probe the relationship on the given (sorted) bound positions.
    ProbeRelationship {
        /// Tuple positions whose values are known when the step runs.
        positions: Vec<usize>,
    },
    /// Enumerate the units carrying a required attribute value, via the
    /// attribute equality index (`filter` indexes into [`Plan::filters`]).
    ProbeAttribute {
        /// Index of the filter supplying attribute and value.
        filter: usize,
    },
}

/// A semi-join pruning pass applied to a scanned atom: candidate tuples
/// whose value at `position` does not appear in the source predicate's
/// column can never join, and are dropped before the join runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemiJoin {
    /// Position of the scanned atom being pruned.
    pub position: usize,
    /// Variable shared with the source atom.
    pub var: String,
    /// Predicate providing the pruning column.
    pub source_predicate: String,
    /// Column of the source predicate (0 for entities).
    pub source_position: usize,
    /// Whether the source is an entity class or a relationship.
    pub source_kind: PredicateKind,
}

/// How one atom position maps onto the executor's register tuple.
///
/// The planner assigns every distinct query variable a fixed register slot
/// (in order of first binding along the chosen step order); each step then
/// carries a `layout` — one `SlotTerm` per atom position — telling the
/// tuple executor, without any name lookups, whether a matched value must
/// equal a constant, be written into a fresh slot, or be checked against a
/// slot written earlier (including earlier positions of the same atom, for
/// repeated variables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotTerm {
    /// The term is a constant (the atom's term at the same position).
    Const,
    /// First occurrence of a variable: write the matched value to the slot.
    Write(usize),
    /// The variable is already bound: check equality against the slot.
    Check(usize),
}

/// One step of a [`Plan`]: an atom, its access path, pruning passes and the
/// planner's output-size estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// The atom evaluated by this step.
    pub atom: Atom,
    /// Index of this atom in the source query's atom list (the planner
    /// reorders atoms, so step order generally differs from source order).
    /// [`instantiate`] uses this to re-target a cached plan at a query of
    /// the same shape but different constants.
    pub atom_index: usize,
    /// Access path.
    pub access: Access,
    /// Estimated number of matching tuples (per partial binding for
    /// probes, total for scans).
    pub est_rows: f64,
    /// Semi-join pruning passes (scans only).
    pub semijoins: Vec<SemiJoin>,
    /// Register layout: one [`SlotTerm`] per atom position.
    pub layout: Vec<SlotTerm>,
}

/// A statically-derived fact attached to a [`Plan`] by a higher layer
/// (the CaRL whole-program condition analysis). The planner itself never
/// synthesises facts — it has no visibility into attribute comparisons
/// beyond equality filters — but it honours them: a [`PlanFact::ProvenEmpty`]
/// fact makes [`Plan::unsatisfiable`] true, so the executors return no
/// rows without scanning anything, and [`PlanFact::ValueBound`] facts clamp
/// the plan's cardinality estimate via [`Plan::cardinality_clamp`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanFact {
    /// The condition this plan evaluates was proven to admit no satisfying
    /// rows (e.g. conflicting equalities or an empty comparison interval).
    ProvenEmpty {
        /// Human-readable proof sketch, for `Display` and explain output.
        reason: String,
    },
    /// Every surviving row's value of `attr` lies within `bounds`.
    ValueBound {
        /// The bounded attribute.
        attr: String,
        /// Rendered interval or constant (e.g. `Score in (5, +inf)`).
        bounds: String,
        /// Optional row-count clamp implied by the bound (e.g. a Bool
        /// attribute pinned to one value over `n` units).
        max_rows: Option<f64>,
    },
}

impl fmt::Display for PlanFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanFact::ProvenEmpty { reason } => write!(f, "proven empty: {reason}"),
            PlanFact::ValueBound {
                attr,
                bounds,
                max_rows,
            } => {
                write!(f, "bound: {bounds}")?;
                if let Some(rows) = max_rows {
                    write!(f, " (≤{} rows via `{attr}`)", rows.round())?;
                }
                Ok(())
            }
        }
    }
}

/// An executable, inspectable evaluation plan for a conjunctive query with
/// optional equality filters.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Ordered steps (one per query atom).
    pub steps: Vec<PlanStep>,
    /// Register slots: slot index → variable name, in binding order along
    /// the step sequence. The tuple executor carries one dense register
    /// tuple of this width per partial answer.
    pub slots: Vec<String>,
    /// Equality filters to enforce.
    pub filters: Vec<EqFilter>,
    /// For each filter, the step count after which all its variables are
    /// bound (0 = before the first step, for constant-only filters);
    /// `None` when some variable is never bound by the query, which makes
    /// the query unsatisfiable under CaRL's comparison semantics.
    pub filter_after: Vec<Option<usize>>,
    /// Statically-derived facts attached by the caller (empty unless a
    /// higher layer ran condition analysis — see [`PlanFact`]).
    pub facts: Vec<PlanFact>,
}

impl Plan {
    /// Whether this plan provably has no answers: a filter references a
    /// variable the query never binds, or an attached [`PlanFact`] proved
    /// the underlying condition empty. The executors consult this before
    /// touching any data.
    pub fn unsatisfiable(&self) -> bool {
        self.filter_after.iter().any(Option::is_none)
            || self
                .facts
                .iter()
                .any(|fact| matches!(fact, PlanFact::ProvenEmpty { .. }))
    }

    /// Attach statically-derived facts (builder style).
    #[must_use]
    pub fn with_facts(mut self, facts: Vec<PlanFact>) -> Self {
        self.facts = facts;
        self
    }

    /// The tightest row-count clamp the attached facts imply: 0 for a
    /// proven-empty plan, the smallest `max_rows` among value bounds
    /// otherwise, `None` when no fact clamps cardinality.
    pub fn cardinality_clamp(&self) -> Option<f64> {
        self.facts
            .iter()
            .filter_map(|fact| match fact {
                PlanFact::ProvenEmpty { .. } => Some(0.0),
                PlanFact::ValueBound { max_rows, .. } => *max_rows,
            })
            .fold(None, |acc, rows| {
                Some(acc.map_or(rows, |a: f64| a.min(rows)))
            })
    }

    /// The register slot the executor assigns to `var`, if the query binds
    /// it. Streaming consumers use this to compile per-row extraction specs
    /// before (or without) seeing the first answer batch: the slot layout of
    /// every [`crate::eval::TupleAnswers`] chunk a plan produces is exactly
    /// `slots`.
    pub fn slot_of(&self, var: &str) -> Option<usize> {
        self.slots.iter().position(|s| s == var)
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let query: Vec<String> = self.steps.iter().map(|s| s.atom.to_string()).collect();
        if query.is_empty() {
            writeln!(f, "plan for true")?;
        } else {
            writeln!(f, "plan for {}", query.join(", "))?;
        }
        if !self.slots.is_empty() {
            let slots: Vec<String> = self
                .slots
                .iter()
                .enumerate()
                .map(|(i, v)| format!("r{i}={v}"))
                .collect();
            writeln!(f, "  slots: {}", slots.join(", "))?;
        }
        for (i, step) in self.steps.iter().enumerate() {
            let est = format!("[~{} rows]", step.est_rows.round());
            match &step.access {
                Access::ScanEntity | Access::ScanRelationship => {
                    writeln!(f, "  {}. scan {} {est}", i + 1, step.atom)?;
                }
                Access::ProbeEntity => {
                    writeln!(f, "  {}. check {} {est}", i + 1, step.atom)?;
                }
                Access::ProbeRelationship { positions } => {
                    let pos: Vec<String> = positions.iter().map(usize::to_string).collect();
                    writeln!(
                        f,
                        "  {}. probe {} via ({}) {est}",
                        i + 1,
                        step.atom,
                        pos.join(", ")
                    )?;
                }
                Access::ProbeAttribute { filter } => {
                    writeln!(
                        f,
                        "  {}. fetch {} from {} {est}",
                        i + 1,
                        step.atom,
                        self.filters[*filter]
                    )?;
                }
            }
            for sj in &step.semijoins {
                writeln!(
                    f,
                    "       semi-join: {} in {}.{}",
                    sj.var, sj.source_predicate, sj.source_position
                )?;
            }
        }
        for (filter, after) in self.filters.iter().zip(&self.filter_after) {
            match after {
                Some(0) => writeln!(f, "  filter {filter} (before step 1)")?,
                Some(k) => writeln!(f, "  filter {filter} (after step {k})")?,
                None => writeln!(f, "  filter {filter} (never bound: no answers)")?,
            }
        }
        for fact in &self.facts {
            writeln!(f, "  fact: {fact}")?;
        }
        Ok(())
    }
}

/// Plan `query` over `skeleton` (no filters, no attribute indexes).
pub fn plan_query(
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
) -> RelResult<Plan> {
    plan_impl(schema, skeleton, query, &[], None)
}

/// Plan `query` with equality `filters` over a full instance, using
/// `cache` for attribute-index lookups (selective filters can replace full
/// scans with attribute-index fetches).
pub fn plan_query_filtered(
    schema: &RelationalSchema,
    instance: &Instance,
    cache: &IndexCache,
    query: &ConjunctiveQuery,
    filters: &[EqFilter],
) -> RelResult<Plan> {
    plan_impl(
        schema,
        instance.skeleton(),
        query,
        filters,
        Some((instance, cache)),
    )
}

/// Validate every atom's predicate and arity. Shared with
/// [`crate::eval::evaluate_naive`] so the planned and reference evaluators
/// reject exactly the same queries with exactly the same errors.
pub(crate) fn validate(schema: &RelationalSchema, query: &ConjunctiveQuery) -> RelResult<()> {
    for atom in &query.atoms {
        let arity = schema
            .predicate_arity(&atom.predicate)
            .ok_or_else(|| RelError::UnknownPredicate(atom.predicate.clone()))?;
        if atom.terms.len() != arity {
            return Err(RelError::ArityMismatch {
                predicate: atom.predicate.clone(),
                expected: arity,
                actual: atom.terms.len(),
            });
        }
    }
    Ok(())
}

/// Statically check the structural invariants of an emitted [`Plan`].
///
/// The planner is trusted nowhere else: every `evaluate_*` entry point
/// asserts this in debug builds, and the reference-evaluation fuzz suite
/// and the golden plan snapshots run it unconditionally. The invariants:
///
/// * every step's atom names a schema predicate with the right arity, and
///   its access path matches the predicate kind (entity vs relationship);
/// * each step's register `layout` aligns with the atom's terms — constants
///   map to [`SlotTerm::Const`], variables to `Write`/`Check` of the slot
///   holding that variable — and every slot is written exactly once, before
///   any `Check` reads it;
/// * probe access paths only consume bound positions: `ProbeEntity` needs
///   its single key bound, `ProbeRelationship` positions must be strictly
///   ascending, in range and bound, and `ProbeAttribute` must cite an
///   existing filter whose attribute attaches to the atom's predicate and
///   whose arguments are exactly the atom's terms;
/// * semi-joins only prune scans, from real columns of schema predicates
///   that share the pruned variable;
/// * `filter_after` pins every filter to the earliest step after which all
///   its variables are bound (`None` exactly when some variable is never
///   bound);
/// * every cost estimate is finite and non-negative.
pub fn verify(schema: &RelationalSchema, plan: &Plan) -> RelResult<()> {
    let invalid = |message: String| RelError::InvalidPlan { message };

    // Register discipline: slots written exactly once, before any read.
    let mut written: Vec<bool> = vec![false; plan.slots.len()];
    for (si, step) in plan.steps.iter().enumerate() {
        let n = si + 1; // steps are 1-based everywhere the plan is shown
        let arity = schema
            .predicate_arity(&step.atom.predicate)
            .ok_or_else(|| {
                invalid(format!(
                    "step {n} references unknown predicate `{}`",
                    step.atom.predicate
                ))
            })?;
        if step.atom.terms.len() != arity {
            return Err(invalid(format!(
                "step {n}: `{}` expects arity {arity}, atom has {}",
                step.atom.predicate,
                step.atom.terms.len()
            )));
        }
        if step.layout.len() != step.atom.terms.len() {
            return Err(invalid(format!(
                "step {n}: layout has {} entries for {} atom positions",
                step.layout.len(),
                step.atom.terms.len()
            )));
        }
        if !step.est_rows.is_finite() || step.est_rows < 0.0 {
            return Err(invalid(format!(
                "step {n}: estimate {} is not a finite non-negative row count",
                step.est_rows
            )));
        }

        let kind = schema
            .predicate_kind(&step.atom.predicate)
            .expect("arity lookup above succeeded");
        match (&step.access, kind) {
            (Access::ScanEntity | Access::ProbeEntity, PredicateKind::Entity) => {}
            (
                Access::ScanRelationship | Access::ProbeRelationship { .. },
                PredicateKind::Relationship,
            ) => {}
            (Access::ProbeAttribute { .. }, _) => {}
            (access, kind) => {
                return Err(invalid(format!(
                    "step {n}: access path {access:?} does not fit {kind:?} predicate `{}`",
                    step.atom.predicate
                )));
            }
        }

        // A position is bound *at the start of the step* if it is a constant
        // or checks a slot written by an earlier step.
        let bound_at_entry: Vec<bool> = step
            .layout
            .iter()
            .map(|t| match t {
                SlotTerm::Const => true,
                SlotTerm::Check(s) => written.get(*s).copied().unwrap_or(false),
                SlotTerm::Write(_) => false,
            })
            .collect();

        // Layout/term alignment and the write-once/read-after-write rule.
        // Repeated variables inside one atom write on first occurrence and
        // check the same slot afterwards, so `written` is updated in
        // position order.
        for (p, (term, slot_term)) in step.atom.terms.iter().zip(&step.layout).enumerate() {
            match (term, slot_term) {
                (Term::Const(_), SlotTerm::Const) => {}
                (Term::Const(_), other) => {
                    return Err(invalid(format!(
                        "step {n} position {p}: constant term mapped to {other:?}"
                    )));
                }
                (Term::Var(v), SlotTerm::Const) => {
                    return Err(invalid(format!(
                        "step {n} position {p}: variable `{v}` mapped to Const"
                    )));
                }
                (Term::Var(v), SlotTerm::Write(s)) => {
                    if plan.slots.get(*s).map(String::as_str) != Some(v.as_str()) {
                        return Err(invalid(format!(
                            "step {n} position {p}: Write({s}) does not name slot of `{v}`"
                        )));
                    }
                    if written[*s] {
                        return Err(invalid(format!(
                            "step {n} position {p}: slot r{s} (`{v}`) written twice"
                        )));
                    }
                    written[*s] = true;
                }
                (Term::Var(v), SlotTerm::Check(s)) => {
                    if plan.slots.get(*s).map(String::as_str) != Some(v.as_str()) {
                        return Err(invalid(format!(
                            "step {n} position {p}: Check({s}) does not name slot of `{v}`"
                        )));
                    }
                    if !written[*s] {
                        return Err(invalid(format!(
                            "step {n} position {p}: slot r{s} (`{v}`) read before any write"
                        )));
                    }
                }
            }
        }

        // Access-path preconditions against the entry-time bound positions.
        match &step.access {
            Access::ScanEntity | Access::ScanRelationship => {}
            Access::ProbeEntity => {
                if !bound_at_entry[0] {
                    return Err(invalid(format!(
                        "step {n}: ProbeEntity on `{}` with unbound key",
                        step.atom.predicate
                    )));
                }
            }
            Access::ProbeRelationship { positions } => {
                if positions.is_empty() {
                    return Err(invalid(format!(
                        "step {n}: ProbeRelationship with no positions"
                    )));
                }
                for pair in positions.windows(2) {
                    if pair[0] >= pair[1] {
                        return Err(invalid(format!(
                            "step {n}: probe positions {positions:?} are not strictly ascending"
                        )));
                    }
                }
                for &p in positions {
                    if p >= step.atom.terms.len() {
                        return Err(invalid(format!(
                            "step {n}: probe position {p} out of range for `{}`",
                            step.atom.predicate
                        )));
                    }
                    if !bound_at_entry[p] {
                        return Err(invalid(format!(
                            "step {n}: probe position {p} of `{}` is not bound",
                            step.atom.predicate
                        )));
                    }
                }
            }
            Access::ProbeAttribute { filter } => {
                let flt = plan.filters.get(*filter).ok_or_else(|| {
                    invalid(format!(
                        "step {n}: ProbeAttribute cites filter {filter}, plan has {}",
                        plan.filters.len()
                    ))
                })?;
                let subject_matches = schema
                    .attribute(&flt.attr)
                    .is_some_and(|def| def.subject == step.atom.predicate);
                if !subject_matches {
                    return Err(invalid(format!(
                        "step {n}: attribute `{}` does not attach to `{}`",
                        flt.attr, step.atom.predicate
                    )));
                }
                if flt.args != step.atom.terms {
                    return Err(invalid(format!(
                        "step {n}: filter `{flt}` arguments differ from the atom's terms"
                    )));
                }
            }
        }

        // Semi-join soundness: scans only, pruning a real variable position
        // against an existing column of a schema predicate.
        let is_scan = matches!(step.access, Access::ScanEntity | Access::ScanRelationship);
        if !is_scan && !step.semijoins.is_empty() {
            return Err(invalid(format!(
                "step {n}: semi-joins attached to a non-scan step"
            )));
        }
        for sj in &step.semijoins {
            let var_at = step.atom.terms.get(sj.position).and_then(Term::as_var);
            if var_at != Some(sj.var.as_str()) {
                return Err(invalid(format!(
                    "step {n}: semi-join on position {} expects variable `{}`",
                    sj.position, sj.var
                )));
            }
            let Some(source_arity) = schema.predicate_arity(&sj.source_predicate) else {
                return Err(invalid(format!(
                    "step {n}: semi-join source `{}` is not in the schema",
                    sj.source_predicate
                )));
            };
            if schema.predicate_kind(&sj.source_predicate) != Some(sj.source_kind) {
                return Err(invalid(format!(
                    "step {n}: semi-join source `{}` has the wrong predicate kind",
                    sj.source_predicate
                )));
            }
            if sj.source_position >= source_arity {
                return Err(invalid(format!(
                    "step {n}: semi-join source position {} out of range for `{}`",
                    sj.source_position, sj.source_predicate
                )));
            }
        }
    }

    if let Some(s) = written.iter().position(|w| !w) {
        return Err(invalid(format!(
            "slot r{s} (`{}`) is never written by any step",
            plan.slots[s]
        )));
    }

    // Step provenance: the `atom_index` values must form a permutation of
    // the step indexes, so [`instantiate`] can map every cached step back
    // to exactly one atom of a new same-shaped query.
    let mut atom_used = vec![false; plan.steps.len()];
    for (si, step) in plan.steps.iter().enumerate() {
        match atom_used.get_mut(step.atom_index) {
            None => {
                return Err(invalid(format!(
                    "step {}: atom_index {} out of range for {} steps",
                    si + 1,
                    step.atom_index,
                    plan.steps.len()
                )));
            }
            Some(used) => {
                if *used {
                    return Err(invalid(format!(
                        "step {}: atom_index {} claimed by two steps",
                        si + 1,
                        step.atom_index
                    )));
                }
                *used = true;
            }
        }
    }

    // Filter placement: one pin per filter, at the earliest step after
    // which all the filter's variables are bound.
    if plan.filter_after.len() != plan.filters.len() {
        return Err(invalid(format!(
            "{} filters but {} filter_after pins",
            plan.filters.len(),
            plan.filter_after.len()
        )));
    }
    let mut bound_after: Vec<BTreeSet<&str>> = Vec::with_capacity(plan.steps.len() + 1);
    bound_after.push(BTreeSet::new());
    for step in &plan.steps {
        let mut next = bound_after.last().expect("seeded").clone();
        next.extend(step.atom.variables());
        bound_after.push(next);
    }
    for (flt, after) in plan.filters.iter().zip(&plan.filter_after) {
        let vars: BTreeSet<&str> = flt.args.iter().filter_map(Term::as_var).collect();
        let earliest = bound_after
            .iter()
            .position(|b| vars.iter().all(|v| b.contains(v)));
        if *after != earliest {
            return Err(invalid(format!(
                "filter `{flt}` pinned after step {after:?}, expected {earliest:?}"
            )));
        }
    }

    // Attached facts: a cardinality clamp must be a finite non-negative
    // row count (the planner multiplies estimates by it downstream).
    for fact in &plan.facts {
        if let PlanFact::ValueBound {
            max_rows: Some(rows),
            attr,
            ..
        } = fact
        {
            if !rows.is_finite() || *rows < 0.0 {
                return Err(invalid(format!(
                    "fact on `{attr}`: clamp {rows} is not a finite non-negative row count"
                )));
            }
        }
    }

    Ok(())
}

/// A canonical rendering of a query + filter list *modulo constants*: every
/// constant (atom terms, filter arguments, filter values) renders as `$`,
/// while predicates, variable names and positions render literally.
///
/// Two query/filter pairs with equal shape keys differ at most in constant
/// values, so a plan built for one can be re-targeted to the other with
/// [`instantiate`] — this is the key of the shape-keyed plan cache in
/// [`crate::index::IndexCache`], which lets repeated user queries that vary
/// only in constants skip planning entirely.
pub fn shape_key(query: &ConjunctiveQuery, filters: &[EqFilter]) -> String {
    fn push_terms(out: &mut String, terms: &[Term]) {
        out.push('(');
        for t in terms {
            match t {
                Term::Var(v) => {
                    out.push('?');
                    out.push_str(v);
                }
                Term::Const(_) => out.push('$'),
            }
            out.push(',');
        }
        out.push(')');
    }
    let mut out = String::new();
    for atom in &query.atoms {
        out.push_str(&atom.predicate);
        push_terms(&mut out, &atom.terms);
        out.push(';');
    }
    out.push('|');
    for flt in filters {
        out.push_str(&flt.attr);
        push_terms(&mut out, &flt.args);
        out.push_str("=$;");
    }
    out
}

/// Re-target a cached plan `template` (built for a query of the same
/// [`shape_key`]) at a new `query`/`filters` pair that differs only in
/// constant values.
///
/// Everything shape-determined is reused verbatim: the join order, register
/// slots, per-step layouts, semi-join passes and filter pins depend only on
/// predicates, variable names and constant *positions* — never on constant
/// values. The atoms and filters themselves are substituted from the new
/// query (via each step's [`PlanStep::atom_index`]), so the executor — which
/// reads constants from the plan's atoms and filters — evaluates the new
/// constants. Only `est_rows` is carried over stale; estimates influence
/// which plan the planner *picks*, never what a plan *computes*, so a
/// same-shape template stays correct (at worst suboptimal for the new
/// constants).
///
/// Returns `None` when the template does not structurally match the query
/// (callers then fall back to cold planning).
pub fn instantiate(
    template: &Plan,
    query: &ConjunctiveQuery,
    filters: &[EqFilter],
) -> Option<Plan> {
    fn same_shape(a: &[Term], b: &[Term]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| match (x, y) {
                (Term::Var(p), Term::Var(q)) => p == q,
                (Term::Const(_), Term::Const(_)) => true,
                _ => false,
            })
    }
    if template.steps.len() != query.atoms.len() || template.filters.len() != filters.len() {
        return None;
    }
    for (tf, nf) in template.filters.iter().zip(filters) {
        if tf.attr != nf.attr || !same_shape(&tf.args, &nf.args) {
            return None;
        }
    }
    let mut steps = Vec::with_capacity(template.steps.len());
    for step in &template.steps {
        let atom = query.atoms.get(step.atom_index)?;
        if atom.predicate != step.atom.predicate || !same_shape(&atom.terms, &step.atom.terms) {
            return None;
        }
        // An attribute fetch requires its filter's arguments to equal the
        // atom's terms *exactly* (constants included); the shape key only
        // guarantees equality modulo constants, so re-check against the new
        // constants and bail to cold planning if they disagree.
        if let Access::ProbeAttribute { filter } = &step.access {
            let flt = filters.get(*filter)?;
            if flt.args != atom.terms {
                return None;
            }
        }
        steps.push(PlanStep {
            atom: atom.clone(),
            ..step.clone()
        });
    }
    Some(Plan {
        steps,
        slots: template.slots.clone(),
        filters: filters.to_vec(),
        filter_after: template.filter_after.clone(),
        facts: template.facts.clone(),
    })
}

fn plan_impl(
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    query: &ConjunctiveQuery,
    filters: &[EqFilter],
    attr_ctx: Option<(&Instance, &IndexCache)>,
) -> RelResult<Plan> {
    validate(schema, query)?;

    let mut remaining: Vec<usize> = (0..query.atoms.len()).collect();
    let mut bound: BTreeSet<String> = BTreeSet::new();
    let mut steps: Vec<PlanStep> = Vec::with_capacity(query.atoms.len());

    while !remaining.is_empty() {
        // Pick the cheapest remaining atom; ties break on source order.
        let mut best: Option<(usize, Access, f64)> = None;
        for &i in &remaining {
            let (access, est) =
                access_for(schema, skeleton, &query.atoms[i], &bound, filters, attr_ctx);
            let better = match &best {
                None => true,
                Some((_, _, best_est)) => est < *best_est,
            };
            if better {
                best = Some((i, access, est));
            }
        }
        let (chosen, access, est) = best.expect("remaining is non-empty");
        remaining.retain(|&i| i != chosen);

        let atom = query.atoms[chosen].clone();
        let semijoins = match access {
            Access::ScanEntity | Access::ScanRelationship => {
                semijoins_for(schema, query, chosen, &atom)
            }
            _ => Vec::new(),
        };
        for v in atom.variables() {
            bound.insert(v.to_string());
        }
        steps.push(PlanStep {
            atom,
            atom_index: chosen,
            access,
            est_rows: est,
            semijoins,
            layout: Vec::new(),
        });
    }

    // Assign every distinct variable a register slot in binding order and
    // derive each step's positional layout for the tuple executor.
    let mut slots: Vec<String> = Vec::new();
    for step in &mut steps {
        step.layout = step
            .atom
            .terms
            .iter()
            .map(|term| match term {
                Term::Const(_) => SlotTerm::Const,
                Term::Var(v) => match slots.iter().position(|s| s == v) {
                    Some(slot) => SlotTerm::Check(slot),
                    None => {
                        slots.push(v.clone());
                        SlotTerm::Write(slots.len() - 1)
                    }
                },
            })
            .collect();
    }

    // Pin every filter to the earliest step after which its variables are
    // all bound.
    let mut bound_after: Vec<BTreeSet<String>> = Vec::with_capacity(steps.len() + 1);
    bound_after.push(BTreeSet::new());
    for step in &steps {
        let mut next = bound_after
            .last()
            .expect("seeded with the empty set")
            .clone();
        for v in step.atom.variables() {
            next.insert(v.to_string());
        }
        bound_after.push(next);
    }
    let filter_after = filters
        .iter()
        .map(|flt| {
            let vars: BTreeSet<&str> = flt.args.iter().filter_map(Term::as_var).collect();
            bound_after
                .iter()
                .position(|b| vars.iter().all(|v| b.contains(*v)))
        })
        .collect();

    Ok(Plan {
        steps,
        slots,
        filters: filters.to_vec(),
        filter_after,
        facts: Vec::new(),
    })
}

/// Choose the access path and estimated output size for `atom` given the
/// variables bound so far.
fn access_for(
    schema: &RelationalSchema,
    skeleton: &Skeleton,
    atom: &Atom,
    bound: &BTreeSet<String>,
    filters: &[EqFilter],
    attr_ctx: Option<(&Instance, &IndexCache)>,
) -> (Access, f64) {
    let is_bound = |t: &Term| match t {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(v),
    };
    match schema.predicate_kind(&atom.predicate) {
        Some(PredicateKind::Entity) => {
            if is_bound(&atom.terms[0]) {
                (Access::ProbeEntity, 1.0)
            } else if let Some((filter, est)) = attribute_fetch(schema, atom, filters, attr_ctx) {
                (Access::ProbeAttribute { filter }, est)
            } else {
                (
                    Access::ScanEntity,
                    skeleton.entity_count(&atom.predicate) as f64,
                )
            }
        }
        Some(PredicateKind::Relationship) => {
            let positions: Vec<usize> = atom
                .terms
                .iter()
                .enumerate()
                .filter(|(_, t)| is_bound(t))
                .map(|(p, _)| p)
                .collect();
            let card = skeleton.relationship_count(&atom.predicate) as f64;
            if !positions.is_empty() {
                let mut est = card;
                for &p in &positions {
                    let distinct = skeleton.distinct_count(&atom.predicate, p);
                    if distinct == 0 {
                        est = 0.0;
                        break;
                    }
                    est /= distinct as f64;
                }
                (Access::ProbeRelationship { positions }, est)
            } else if let Some((filter, est)) = attribute_fetch(schema, atom, filters, attr_ctx) {
                (Access::ProbeAttribute { filter }, est)
            } else {
                (Access::ScanRelationship, card)
            }
        }
        // Unknown predicates are rejected by `validate` before planning.
        None => (Access::ScanRelationship, f64::INFINITY),
    }
}

/// Find the most selective filter that can *replace* a scan of `atom` with
/// an attribute-index fetch: the filter's attribute must attach to the
/// atom's predicate and its arguments must be exactly the atom's terms.
fn attribute_fetch(
    schema: &RelationalSchema,
    atom: &Atom,
    filters: &[EqFilter],
    attr_ctx: Option<(&Instance, &IndexCache)>,
) -> Option<(usize, f64)> {
    let (instance, cache) = attr_ctx?;
    let mut best: Option<(usize, f64)> = None;
    for (i, flt) in filters.iter().enumerate() {
        let subject_matches = schema
            .attribute(&flt.attr)
            .is_some_and(|def| def.subject == atom.predicate);
        if !subject_matches || flt.args != atom.terms {
            continue;
        }
        let est = cache
            .attribute_index(instance, &flt.attr)
            .cardinality(&flt.value) as f64;
        let better = match best {
            None => true,
            Some((_, best_est)) => est < best_est,
        };
        if better {
            best = Some((i, est));
        }
    }
    best
}

/// Semi-join pruning passes for a scanned atom: every variable position can
/// be pruned against every *other* atom mentioning the same variable,
/// because that atom will enforce the equality later anyway. Pruning
/// against the same column of the same predicate is a no-op and skipped.
fn semijoins_for(
    schema: &RelationalSchema,
    query: &ConjunctiveQuery,
    chosen: usize,
    atom: &Atom,
) -> Vec<SemiJoin> {
    let mut out: Vec<SemiJoin> = Vec::new();
    for (position, term) in atom.terms.iter().enumerate() {
        let Term::Var(var) = term else { continue };
        for (j, other) in query.atoms.iter().enumerate() {
            if j == chosen {
                continue;
            }
            let Some(kind) = schema.predicate_kind(&other.predicate) else {
                continue;
            };
            for (q, other_term) in other.terms.iter().enumerate() {
                if other_term.as_var() != Some(var.as_str()) {
                    continue;
                }
                let trivial = other.predicate == atom.predicate
                    && (kind == PredicateKind::Entity || q == position);
                if trivial {
                    continue;
                }
                let sj = SemiJoin {
                    position,
                    var: var.clone(),
                    source_predicate: other.predicate.clone(),
                    source_position: q,
                    source_kind: kind,
                };
                if !out.iter().any(|s| {
                    s.position == sj.position
                        && s.source_predicate == sj.source_predicate
                        && s.source_position == sj.source_position
                }) {
                    out.push(sj);
                }
            }
        }
    }
    out.sort_by(|a, b| {
        (a.position, &a.source_predicate, a.source_position).cmp(&(
            b.position,
            &b.source_predicate,
            b.source_position,
        ))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    fn setup() -> (RelationalSchema, Skeleton) {
        let inst = Instance::review_example();
        (inst.schema().clone(), inst.skeleton().clone())
    }

    #[test]
    fn chain_join_probes_after_the_first_scan() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
        ]);
        let plan = plan_query(&schema, &sk, &q).unwrap();
        assert_eq!(plan.steps.len(), 2);
        // Submitted is smaller (3 < 5), so it is scanned first; Author is
        // then probed on its bound submission position.
        assert_eq!(plan.steps[0].atom.predicate, "Submitted");
        assert_eq!(plan.steps[0].access, Access::ScanRelationship);
        assert_eq!(plan.steps[1].atom.predicate, "Author");
        assert_eq!(
            plan.steps[1].access,
            Access::ProbeRelationship { positions: vec![1] }
        );
        assert!(!plan.unsatisfiable());
    }

    #[test]
    fn constants_make_atoms_probes_up_front() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::constant("s3")]),
            Atom::new("Person", vec![Term::var("A")]),
        ]);
        let plan = plan_query(&schema, &sk, &q).unwrap();
        // The constant probe (5/3 ≈ 1.7 est rows) beats the Person scan (3).
        assert_eq!(plan.steps[0].atom.predicate, "Author");
        assert_eq!(
            plan.steps[0].access,
            Access::ProbeRelationship { positions: vec![1] }
        );
        // Person(A) then has A bound: membership check.
        assert_eq!(plan.steps[1].access, Access::ProbeEntity);
    }

    #[test]
    fn scans_are_semijoin_pruned_against_cooccurring_atoms() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
        ]);
        let plan = plan_query(&schema, &sk, &q).unwrap();
        let first = &plan.steps[0];
        assert_eq!(first.access, Access::ScanRelationship);
        assert_eq!(first.semijoins.len(), 1);
        assert_eq!(first.semijoins[0].var, "S");
        assert_eq!(first.semijoins[0].source_predicate, "Author");
        assert_eq!(first.semijoins[0].source_position, 1);
    }

    #[test]
    fn self_join_on_the_same_position_is_not_semijoined() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Author", vec![Term::var("B"), Term::var("S")]),
        ]);
        let plan = plan_query(&schema, &sk, &q).unwrap();
        // Pruning Author.1 against Author.1 is a no-op and must be skipped.
        assert!(plan.steps[0].semijoins.is_empty());
    }

    #[test]
    fn filters_are_pinned_to_their_binding_step() {
        let (schema, sk) = setup();
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
        ]);
        let filters = vec![EqFilter {
            attr: "Blind".into(),
            args: vec![Term::var("C")],
            value: Value::Bool(false),
        }];
        let plan = plan_query_filtered(&schema, &inst, &cache, &q, &filters).unwrap();
        // C is bound by whichever step evaluates Submitted.
        let submitted_step = plan
            .steps
            .iter()
            .position(|s| s.atom.predicate == "Submitted")
            .unwrap();
        assert_eq!(plan.filter_after, vec![Some(submitted_step + 1)]);
        assert_eq!(sk.relationship_count("Submitted"), 3);
    }

    #[test]
    fn selective_filters_replace_entity_scans() {
        let schema = RelationalSchema::review_example();
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let filters = vec![EqFilter {
            attr: "Prestige".into(),
            args: vec![Term::var("A")],
            value: Value::Int(0),
        }];
        let plan = plan_query_filtered(&schema, &inst, &cache, &q, &filters).unwrap();
        assert_eq!(plan.steps[0].access, Access::ProbeAttribute { filter: 0 });
        // Only Carlos has Prestige = 0.
        assert_eq!(plan.steps[0].est_rows, 1.0);
    }

    #[test]
    fn unbound_filter_variables_make_the_plan_unsatisfiable() {
        let (schema, sk) = setup();
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let filters = vec![EqFilter {
            attr: "Blind".into(),
            args: vec![Term::var("Z")],
            value: Value::Bool(true),
        }];
        let plan = plan_query_filtered(&schema, &inst, &cache, &q, &filters).unwrap();
        assert!(plan.unsatisfiable());
        assert_eq!(sk.entity_count("Person"), 3);
    }

    #[test]
    fn attached_facts_drive_unsatisfiability_and_cardinality_clamps() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let plan = plan_query(&schema, &sk, &q).unwrap();
        assert!(!plan.unsatisfiable());
        assert_eq!(plan.cardinality_clamp(), None);

        // A value bound clamps cardinality without making the plan empty.
        let bounded = plan.clone().with_facts(vec![PlanFact::ValueBound {
            attr: "Qualification".into(),
            bounds: "Qualification in [10, +inf)".into(),
            max_rows: Some(2.0),
        }]);
        assert!(!bounded.unsatisfiable());
        assert_eq!(bounded.cardinality_clamp(), Some(2.0));
        verify(&schema, &bounded).unwrap();
        let shown = bounded.to_string();
        assert!(shown.contains("fact: bound: Qualification in [10, +inf)"));

        // A proven-empty fact short-circuits the whole plan.
        let empty = plan.with_facts(vec![
            PlanFact::ValueBound {
                attr: "Qualification".into(),
                bounds: "Qualification in [10, +inf)".into(),
                max_rows: Some(2.0),
            },
            PlanFact::ProvenEmpty {
                reason: "`Score` required both > 9000 and < -9000".into(),
            },
        ]);
        assert!(empty.unsatisfiable());
        assert_eq!(empty.cardinality_clamp(), Some(0.0));
        assert!(empty.to_string().contains("fact: proven empty"));

        // `verify` rejects non-finite clamps.
        let (schema2, sk2) = setup();
        let bad = plan_query(&schema2, &sk2, &ConjunctiveQuery::new(vec![]))
            .unwrap()
            .with_facts(vec![PlanFact::ValueBound {
                attr: "Qualification".into(),
                bounds: "?".into(),
                max_rows: Some(f64::NAN),
            }]);
        assert!(matches!(
            verify(&schema2, &bad),
            Err(RelError::InvalidPlan { .. })
        ));
    }

    #[test]
    fn proven_empty_facts_short_circuit_evaluation() {
        // The executors consult `unsatisfiable()` before touching data, so
        // a fact-annotated plan returns no rows without scanning.
        let (schema, _) = setup();
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let plan = plan_query_filtered(&schema, &inst, &cache, &q, &[])
            .unwrap()
            .with_facts(vec![PlanFact::ProvenEmpty {
                reason: "condition proven empty".into(),
            }]);
        let answers =
            crate::eval::execute_tuples(&plan, &schema, inst.skeleton(), Some(&inst), &cache);
        assert!(answers.is_empty());
    }

    #[test]
    fn planning_validates_predicates_and_arity() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![Atom::new("Nope", vec![Term::var("X")])]);
        assert!(matches!(
            plan_query(&schema, &sk, &q),
            Err(RelError::UnknownPredicate(_))
        ));
        let q = ConjunctiveQuery::new(vec![Atom::new("Author", vec![Term::var("X")])]);
        assert!(matches!(
            plan_query(&schema, &sk, &q),
            Err(RelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn display_is_stable_and_informative() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
        ]);
        let plan = plan_query(&schema, &sk, &q).unwrap();
        let shown = plan.to_string();
        assert!(shown.contains("plan for"), "{shown}");
        assert!(shown.contains("slots: r0=S, r1=C, r2=A"), "{shown}");
        assert!(shown.contains("scan Submitted(S, C)"), "{shown}");
        assert!(shown.contains("probe Author(A, S) via (1)"), "{shown}");
        assert!(shown.contains("semi-join: S in Author.1"), "{shown}");
    }

    #[test]
    fn emitted_plans_verify() {
        let (schema, sk) = setup();
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let queries = vec![
            ConjunctiveQuery::new(vec![]),
            ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]),
            ConjunctiveQuery::new(vec![
                Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
                Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
                Atom::new("Person", vec![Term::var("A")]),
            ]),
            ConjunctiveQuery::new(vec![Atom::new(
                "Author",
                vec![Term::var("A"), Term::constant("s3")],
            )]),
        ];
        for q in &queries {
            let plan = plan_query(&schema, &sk, q).unwrap();
            verify(&schema, &plan).unwrap_or_else(|e| panic!("{e}\n{plan}"));
        }
        let filters = vec![EqFilter {
            attr: "Blind".into(),
            args: vec![Term::var("C")],
            value: Value::Bool(false),
        }];
        for q in &queries {
            let plan = plan_query_filtered(&schema, &inst, &cache, q, &filters).unwrap();
            verify(&schema, &plan).unwrap_or_else(|e| panic!("{e}\n{plan}"));
        }
    }

    #[test]
    fn hand_built_malformed_plans_are_rejected() {
        let (schema, sk) = setup();
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
        ]);
        let good = plan_query(&schema, &sk, &q).unwrap();
        verify(&schema, &good).unwrap();
        let expect_invalid = |plan: &Plan, what: &str| match verify(&schema, plan) {
            Err(RelError::InvalidPlan { message }) => {
                assert!(message.contains(what), "`{message}` lacks `{what}`")
            }
            other => panic!("expected InvalidPlan for {what}, got {other:?}"),
        };

        // Read-before-write: swap the steps without re-deriving layouts.
        let mut plan = good.clone();
        plan.steps.swap(0, 1);
        expect_invalid(&plan, "read before any write");

        // Double write of one register slot.
        let mut plan = good.clone();
        plan.steps[1].layout[1] = SlotTerm::Write(0);
        expect_invalid(&plan, "written twice");

        // A probe on a position whose value is not yet bound.
        let mut plan = good.clone();
        plan.steps[1].access = Access::ProbeRelationship { positions: vec![0] };
        expect_invalid(&plan, "not bound");

        // A slot no step ever writes.
        let mut plan = good.clone();
        plan.slots.push("Z".into());
        expect_invalid(&plan, "never written");

        // Layout width disagreeing with the atom.
        let mut plan = good.clone();
        plan.steps[0].layout.pop();
        expect_invalid(&plan, "layout");

        // Semi-join from a predicate column that does not exist.
        let mut plan = good.clone();
        plan.steps[0].semijoins[0].source_position = 7;
        expect_invalid(&plan, "out of range");

        // Semi-joins on a probe step are unsound (pruning is scan-only).
        let mut plan = good.clone();
        let sj = plan.steps[0].semijoins[0].clone();
        plan.steps[1].semijoins.push(SemiJoin {
            position: 1,
            var: "S".into(),
            ..sj
        });
        expect_invalid(&plan, "non-scan");

        // A filter pinned at the wrong step.
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let filters = vec![EqFilter {
            attr: "Blind".into(),
            args: vec![Term::var("C")],
            value: Value::Bool(false),
        }];
        let mut plan = plan_query_filtered(&schema, &inst, &cache, &q, &filters).unwrap();
        plan.filter_after[0] = Some(0);
        expect_invalid(&plan, "pinned");

        // A non-finite cost estimate.
        let mut plan = good.clone();
        plan.steps[0].est_rows = f64::NAN;
        expect_invalid(&plan, "finite");
    }

    #[test]
    fn shape_key_abstracts_constants_and_nothing_else() {
        let q1 = ConjunctiveQuery::new(vec![Atom::new(
            "Author",
            vec![Term::var("A"), Term::constant("s3")],
        )]);
        let q2 = ConjunctiveQuery::new(vec![Atom::new(
            "Author",
            vec![Term::var("A"), Term::constant("s1")],
        )]);
        // Same shape, different constants.
        assert_eq!(shape_key(&q1, &[]), shape_key(&q2, &[]));
        // A variable in place of the constant is a different shape.
        let q3 = ConjunctiveQuery::new(vec![Atom::new(
            "Author",
            vec![Term::var("A"), Term::var("S")],
        )]);
        assert_ne!(shape_key(&q1, &[]), shape_key(&q3, &[]));
        // Variable *names* are part of the shape (slots are name-keyed).
        let q4 = ConjunctiveQuery::new(vec![Atom::new(
            "Author",
            vec![Term::var("B"), Term::constant("s3")],
        )]);
        assert_ne!(shape_key(&q1, &[]), shape_key(&q4, &[]));
        // Filters: value is abstracted, attribute and argument shape are not.
        let f = |value: Value| {
            vec![EqFilter {
                attr: "Blind".into(),
                args: vec![Term::var("C")],
                value,
            }]
        };
        assert_eq!(
            shape_key(&q1, &f(Value::Bool(true))),
            shape_key(&q1, &f(Value::Bool(false)))
        );
        assert_ne!(shape_key(&q1, &f(Value::Bool(true))), shape_key(&q1, &[]));
    }

    #[test]
    fn instantiate_retargets_constants_and_verifies() {
        let (schema, sk) = setup();
        let q_s3 = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::constant("s3")]),
            Atom::new("Person", vec![Term::var("A")]),
        ]);
        let q_s1 = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::constant("s1")]),
            Atom::new("Person", vec![Term::var("A")]),
        ]);
        let template = plan_query(&schema, &sk, &q_s3).unwrap();
        let plan = instantiate(&template, &q_s1, &[]).expect("same shape must instantiate");
        verify(&schema, &plan).unwrap_or_else(|e| panic!("{e}\n{plan}"));
        // Join order, slots and access paths are reused; constants are new.
        assert_eq!(plan.slots, template.slots);
        for (ts, ns) in template.steps.iter().zip(&plan.steps) {
            assert_eq!(ts.access, ns.access);
            assert_eq!(ts.layout, ns.layout);
            assert_eq!(ts.atom_index, ns.atom_index);
        }
        let author_step = plan
            .steps
            .iter()
            .find(|s| s.atom.predicate == "Author")
            .unwrap();
        assert_eq!(author_step.atom.terms[1], Term::constant("s1"));
        // A different shape refuses to instantiate.
        let q_other = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Person", vec![Term::var("A")]),
        ]);
        assert!(instantiate(&template, &q_other, &[]).is_none());
        assert!(instantiate(
            &template,
            &q_s1,
            &[EqFilter {
                attr: "Blind".into(),
                args: vec![Term::var("C")],
                value: Value::Bool(true),
            }]
        )
        .is_none());
    }

    #[test]
    fn instantiate_substitutes_filters_for_attribute_fetches() {
        let schema = RelationalSchema::review_example();
        let inst = Instance::review_example();
        let cache = IndexCache::for_instance(&inst);
        let q = ConjunctiveQuery::new(vec![Atom::new("Person", vec![Term::var("A")])]);
        let f = |v: i64| {
            vec![EqFilter {
                attr: "Prestige".into(),
                args: vec![Term::var("A")],
                value: Value::Int(v),
            }]
        };
        let template = plan_query_filtered(&schema, &inst, &cache, &q, &f(0)).unwrap();
        assert_eq!(
            template.steps[0].access,
            Access::ProbeAttribute { filter: 0 }
        );
        let plan = instantiate(&template, &q, &f(1)).expect("same filter shape");
        verify(&schema, &plan).unwrap_or_else(|e| panic!("{e}\n{plan}"));
        assert_eq!(plan.filters[0].value, Value::Int(1));
    }

    #[test]
    fn slot_layouts_follow_binding_order() {
        let (schema, sk) = setup();
        // Step order: Submitted(S, C) first (smaller), then Author(A, S).
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
        ]);
        let plan = plan_query(&schema, &sk, &q).unwrap();
        assert_eq!(plan.slots, vec!["S".to_string(), "C".into(), "A".into()]);
        assert_eq!(
            plan.steps[0].layout,
            vec![SlotTerm::Write(0), SlotTerm::Write(1)]
        );
        assert_eq!(
            plan.steps[1].layout,
            vec![SlotTerm::Write(2), SlotTerm::Check(0)]
        );

        // Repeated variables within one atom: first occurrence writes, the
        // second checks the same slot; constants carry no slot.
        let q = ConjunctiveQuery::new(vec![Atom::new(
            "Reviews",
            vec![Term::var("A"), Term::constant("d1"), Term::var("A")],
        )]);
        let mut schema2 = RelationalSchema::new();
        schema2.add_entity("Person").unwrap();
        schema2.add_entity("Paper").unwrap();
        schema2
            .add_relationship("Reviews", &["Person", "Paper", "Person"])
            .unwrap();
        let plan = plan_query(&schema2, &Skeleton::new(), &q).unwrap();
        assert_eq!(plan.slots, vec!["A".to_string()]);
        assert_eq!(
            plan.steps[0].layout,
            vec![SlotTerm::Write(0), SlotTerm::Const, SlotTerm::Check(0)]
        );
    }
}
