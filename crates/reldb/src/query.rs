//! Conjunctive query intermediate representation.
//!
//! Rule conditions in CaRL (`WHERE Q(Y)` in Definition 3.3) are standard
//! conjunctive queries over the predicates of the schema. This module
//! defines the IR; [`crate::eval`] evaluates it against a skeleton.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A term appearing in a query atom: either a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A named variable, e.g. `A` in `Author(A, S)`.
    Var(String),
    /// A constant value, e.g. `"ConfDB"`.
    Const(Value),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: &str) -> Self {
        Term::Var(name.to_string())
    }

    /// Convenience constructor for a constant term.
    pub fn constant(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// The variable name if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => match c {
                Value::Str(s) => write!(f, "\"{s}\""),
                other => write!(f, "{other}"),
            },
        }
    }
}

/// A single atom `P(t1, …, tk)` over an entity or relationship predicate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Atom {
    /// Predicate name.
    pub predicate: String,
    /// Argument terms, positionally.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(predicate: &str, terms: Vec<Term>) -> Self {
        Self {
            predicate: predicate.to_string(),
            terms,
        }
    }

    /// Variables appearing in this atom, in positional order (may repeat).
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().filter_map(Term::as_var)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        write!(f, "{}({})", self.predicate, args.join(", "))
    }
}

/// A conjunctive query: a conjunction of atoms over the schema predicates.
///
/// The empty query is `true` (it has exactly one answer, the empty
/// substitution), matching the semantics of grounded rules in Def 3.5.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    /// Conjoined atoms.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// The query `true` with no atoms.
    pub fn truth() -> Self {
        Self::default()
    }

    /// Construct a query from atoms.
    pub fn new(atoms: Vec<Atom>) -> Self {
        Self { atoms }
    }

    /// Add an atom (builder style).
    pub fn with_atom(mut self, atom: Atom) -> Self {
        self.atoms.push(atom);
        self
    }

    /// The set of distinct variables appearing in the query, sorted.
    pub fn variables(&self) -> BTreeSet<String> {
        self.atoms
            .iter()
            .flat_map(|a| a.variables().map(str::to_string))
            .collect()
    }

    /// Whether the query has no atoms (i.e. is trivially true).
    pub fn is_trivial(&self) -> bool {
        self.atoms.is_empty()
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        let parts: Vec<String> = self.atoms.iter().map(|a| a.to_string()).collect();
        write!(f, "{}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_are_deduplicated_and_sorted() {
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::var("S")]),
            Atom::new("Submitted", vec![Term::var("S"), Term::var("C")]),
        ]);
        let vars: Vec<String> = q.variables().into_iter().collect();
        assert_eq!(
            vars,
            vec!["A".to_string(), "C".to_string(), "S".to_string()]
        );
    }

    #[test]
    fn display_roundtrips_visually() {
        let q = ConjunctiveQuery::new(vec![
            Atom::new("Author", vec![Term::var("A"), Term::constant("s1")]),
            Atom::new("Person", vec![Term::var("A")]),
        ]);
        assert_eq!(q.to_string(), "Author(A, \"s1\"), Person(A)");
        assert_eq!(ConjunctiveQuery::truth().to_string(), "true");
    }

    #[test]
    fn trivial_query_has_no_vars() {
        let q = ConjunctiveQuery::truth();
        assert!(q.is_trivial());
        assert!(q.variables().is_empty());
    }
}
