//! Configuration and the deterministic RNG handed to strategies.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases each property test runs.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count actually run: the `PROPTEST_CASES` environment
    /// variable, when set to a positive integer, overrides the configured
    /// count (mirroring upstream proptest's env-var support). CI's
    /// release-test job uses this to deepen the fuzzers without slowing
    /// local runs down.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.cases)
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The random generator strategies draw from. Deterministic per seed; the
/// [`crate::proptest!`] macro derives the seed from the test name and case
/// index so failures reproduce exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    /// The underlying generator (vendored `rand`'s xoshiro256++).
    pub rng: SmallRng,
}

impl TestRng {
    /// Build a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}
