//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt;
use std::ops::Range;

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erase the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted union of type-erased strategies ([`crate::prop_oneof!`]).
#[derive(Debug)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T> Union<T> {
    /// Build a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| w).sum();
        assert!(
            total_weight > 0,
            "prop_oneof: total weight must be positive"
        );
        Self { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut draw = rng.rng.gen_range(0..self.total_weight);
        for (weight, strategy) in &self.arms {
            if draw < *weight {
                return strategy.generate(rng);
            }
            draw -= weight;
        }
        unreachable!("prop_oneof: weighted draw out of range")
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// String-literal strategies: a `&str` is interpreted as a sequence of
/// regex character classes with optional `{m,n}` repetition, e.g.
/// `"[A-Z][a-zA-Z0-9_]{0,8}"`. This covers the pattern dialect used by the
/// workspace's tests (classes, ranges, `\n`/`\"`/`\\` escapes, repetition);
/// anything fancier panics loudly so the gap is visible.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = if atom.min >= atom.max {
                atom.min
            } else {
                rng.rng.gen_range(atom.min..atom.max + 1)
            };
            for _ in 0..count {
                let idx = rng.rng.gen_range(0..atom.chars.len());
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet = match c {
            // Regex syntax this dialect does NOT support must fail loudly,
            // not silently generate the metacharacter as a literal.
            '^' | '$' | '(' | ')' | '|' | '.' | '+' | '*' | '?' => panic!(
                "proptest stub: unsupported regex syntax `{c}` in {pattern:?} \
                 (only character classes, literals and {{m,n}} repetition)"
            ),
            '[' => {
                if chars.peek() == Some(&'^') {
                    panic!(
                        "proptest stub: negated character classes are unsupported in {pattern:?}"
                    );
                }
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let Some(c) = chars.next() else {
                        panic!("proptest stub: unterminated character class in {pattern:?}");
                    };
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let start = prev.take().expect("range start");
                            let end = unescape(chars.next().expect("range end"), &mut chars);
                            assert!(start <= end, "proptest stub: bad range in {pattern:?}");
                            // `start` was already pushed as a literal; extend
                            // with the rest of the range.
                            let mut cur = start as u32 + 1;
                            while cur <= end as u32 {
                                set.push(char::from_u32(cur).expect("valid scalar"));
                                cur += 1;
                            }
                        }
                        c => {
                            let lit = unescape(c, &mut chars);
                            set.push(lit);
                            prev = Some(lit);
                        }
                    }
                }
                assert!(
                    !set.is_empty(),
                    "proptest stub: empty character class in {pattern:?}"
                );
                set
            }
            c => vec![unescape(c, &mut chars)],
        };
        // Optional {m,n} / {n} quantifier.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier min"),
                    hi.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom {
            chars: alphabet,
            min,
            max,
        });
    }
    atoms
}

fn unescape(c: char, chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> char {
    if c != '\\' {
        return c;
    }
    match chars.next() {
        Some('n') => '\n',
        Some('t') => '\t',
        Some('r') => '\r',
        Some(other) => other,
        None => panic!("proptest stub: dangling escape"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn class_patterns_generate_matching_strings() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[A-Z][a-zA-Z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_uppercase(), "{s:?}");
            assert!(
                s.chars()
                    .skip(1)
                    .all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn printable_class_with_escape() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = "[ -~\n]{0,120}".generate(&mut rng);
            assert!(s.len() <= 120);
            assert!(
                s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn split_range_class_excludes_gap() {
        let mut rng = rng();
        for _ in 0..300 {
            let s = "[A-EG-SU-Z]{1,4}".generate(&mut rng);
            assert!(
                s.chars()
                    .all(|c| c != 'F' && c != 'T' && c.is_ascii_uppercase()),
                "{s:?}"
            );
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let union = crate::prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let mut rng = rng();
        let draws: Vec<u8> = (0..1000).map(|_| union.generate(&mut rng)).collect();
        let ones = draws.iter().filter(|&&d| d == 1).count();
        assert!(
            (600..900).contains(&ones),
            "weighted draw gave {ones}/1000 ones"
        );
    }

    #[test]
    fn tuples_and_collections_compose() {
        let strat = crate::collection::vec((0i64..10, "[a-z]{1,3}"), 2..5);
        let mut rng = rng();
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            for (n, s) in &v {
                assert!((0..10).contains(n));
                assert!((1..=3).contains(&s.len()));
            }
        }
    }
}
