//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build container has no crates.io access, so this crate reimplements
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` and `boxed`;
//! * strategies for numeric ranges, `bool`, tuples, [`strategy::Just`],
//!   [`collection::vec`], [`option::of`], weighted unions ([`prop_oneof!`])
//!   and regex-character-class string literals (`"[A-Z][a-z0-9]{0,8}"`);
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`) and the
//!   `prop_assert*` macros.
//!
//! Semantics differ from upstream in one deliberate way: **there is no
//! shrinking**. A failing case panics immediately with the assertion
//! message; generation is deterministic per test name, so failures
//! reproduce exactly on re-run.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies for generating collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size` and
    /// elements from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Create a strategy for vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies for generating `Option`s.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `None` or `Some` of the inner strategy's value.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Create a strategy yielding `Some` roughly half of the time.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.rng.gen_bool(0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng.gen_bool(0.5)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng.gen::<f64>() * 2000.0 - 1000.0
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    /// Strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            T::arbitrary(rng)
        }
    }
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted choice between strategies of a common value type.
///
/// `prop_oneof![a, b]` picks uniformly; `prop_oneof![3 => a, 1 => b]` picks
/// `a` three times as often.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
}

/// Property assertion; panics with the formatted message on failure (no
/// shrinking in this offline stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn it_holds(x in 0..100i64, s in "[a-z]{0,8}") { prop_assert!(x >= 0, "{s}"); }
/// }
/// ```
///
/// Each test runs `config.cases` deterministic cases (seeded from the test
/// name), binding every `pat in strategy` argument afresh per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let seed = {
                    use ::std::hash::{Hash, Hasher};
                    let mut hasher = ::std::collections::hash_map::DefaultHasher::new();
                    stringify!($name).hash(&mut hasher);
                    hasher.finish()
                };
                for case in 0..config.effective_cases() {
                    let mut rng = $crate::test_runner::TestRng::from_seed(
                        seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}
