//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small API subset it actually uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`], and the [`Rng`] extension methods `gen`, `gen_range`
//! and `gen_bool`. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic for a given seed, which is all the callers (seeded
//! synthetic-data generators and seeded tests) rely on.

#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Core trait of random generators: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly ("standard" distribution) by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range. The single
/// blanket [`SampleRange`] impl below keys on this trait so that type
/// inference pins the output type to the range's element type immediately
/// (mirroring upstream rand's `SampleUniform`/`SampleRange` structure).
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "gen_range: empty range");
                let span = end.wrapping_sub(start) as u128;
                // Rejection-free modulo is fine here: span is tiny relative
                // to 2^64 for every caller, so the bias is negligible.
                let draw = (rng.next_u64() as u128) % span;
                start.wrapping_add(draw as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "gen_range: empty range");
                let span = end.wrapping_sub(start) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "gen_range: empty range");
                let draw = start + <$t>::sample_standard(rng) * (end - start);
                // `start + u*(end-start)` with u in [0,1) can still round up
                // to `end`; keep the half-open contract.
                if draw < end { draw } else { end.next_down().max(start) }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "gen_range: empty range");
                start + <$t>::sample_standard(rng) * (end - start)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the standard (uniform) distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++), mirroring
    /// `rand::rngs::SmallRng` in spirit (not bit-compatible with upstream).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let n = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&n));
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut trues = 0;
        for _ in 0..2000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            if rng.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!(
            (800..1200).contains(&trues),
            "gen_bool(0.5) gave {trues}/2000"
        );
    }
}
