//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build container cannot reach crates.io, so this workspace vendors a
//! minimal replacement: [`Serialize`] and [`Deserialize`] are marker traits,
//! blanket-implemented for every `Debug` type, and the derive macros accept
//! the usual syntax while emitting nothing. The companion `serde_json` stub
//! renders `Serialize` payloads through their `Debug` form. This is enough
//! for the workspace, which uses serde only for best-effort experiment
//! artefacts — swap in the real crates (the manifests keep the same names)
//! once the build environment has registry access.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;

/// Marker for serialisable types. Blanket-implemented for every [`Debug`]
/// type; the `Debug` supertrait is what lets the vendored `serde_json`
/// render a value.
pub trait Serialize: Debug {}

impl<T: Debug + ?Sized> Serialize for T {}

/// Marker for deserialisable types. Never actually driven by the stub —
/// it exists so `#[derive(Deserialize)]` and `T: Deserialize` bounds
/// compile.
pub trait Deserialize<'de>: Sized {}

impl<'de, T: Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
