//! Offline no-op stand-in for `serde_derive`.
//!
//! The vendored `serde` crate blanket-implements its marker traits for every
//! `Debug` type, so these derives only need to *accept* the syntax
//! (`#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attributes) and
//! emit nothing.

#![deny(unsafe_code)]

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; the trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; the trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
