//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the API subset the workspace's benches use — benchmark groups,
//! [`BenchmarkId`], `bench_with_input`/`bench_function`, [`Bencher::iter`] —
//! as a minimal wall-clock harness: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and prints min/mean/max per iteration.
//! No statistics engine, plots or baselines; swap in the real crate once the
//! build environment has registry access.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to `criterion_group!` target functions.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into().label, sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmark `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Finish the group (prints a trailing newline for readability).
    pub fn finish(self) {
        println!();
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up sample (also primes caches and lazily built state).
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        if bencher.iterations > 0 {
            per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iterations as f64);
        }
    }
    if per_iter.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "  {label}: [{} {} {}] ({} samples)",
        format_seconds(min),
        format_seconds(mean),
        format_seconds(max),
        per_iter.len(),
    );
}

fn format_seconds(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Times closures inside a benchmark.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Run `routine` once per iteration, timing the batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("n"), &7u64, |b, &n| {
            b.iter(|| {
                count += n;
                count
            });
        });
        group.finish();
        assert!(count > 0);
    }
}
