//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon).
//!
//! `into_par_iter()` simply yields the ordinary sequential iterator, so all
//! the adapter and collection machinery comes from [`std::iter::Iterator`].
//! Results are identical to the parallel version for the pure map/filter
//! pipelines this workspace runs (per-replicate seeded RNGs); only wall-clock
//! parallelism is lost. Swap in the real crate once registry access exists.

#![warn(missing_docs)]

/// Drop-in subset of `rayon::prelude`.
pub mod prelude {
    /// Conversion into a "parallel" iterator (sequential in this stub).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns the sequential iterator; adapters (`map`, `filter_map`,
        /// `collect`, …) then come from [`Iterator`].
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}
}
