//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon) — now with
//! real data parallelism.
//!
//! Earlier revisions of this stand-in executed sequentially; this version
//! runs the map/filter pipelines the workspace uses on `std::thread` scoped
//! workers. The input is split into contiguous chunks (one per worker) and
//! the per-chunk results are concatenated **in chunk order**, so the output
//! order is identical to sequential execution regardless of the number of
//! threads — which is what keeps seeded bootstrap resampling deterministic.
//!
//! The worker count defaults to [`std::thread::available_parallelism`] and
//! can be overridden with the `RAYON_NUM_THREADS` environment variable,
//! mirroring the real crate. Like the real crate, the environment variable
//! is read **once** (on first use): `std::env::var` takes a process-wide
//! lock, and `current_num_threads` sits on the executor's per-step hot
//! path. A value of `0` (or anything unparseable) falls back to the
//! default rather than flowing a zero thread count into chunk sizing.
//! Tests and benchmarks that need to vary the worker count at runtime use
//! [`set_num_threads`] instead of mutating the process environment (env
//! mutation races with concurrently running tests in the same binary).
//! Swap in the real crate once registry access exists; the API subset here
//! (`prelude::IntoParallelIterator`, `map`, `filter`, `filter_map`,
//! `for_each`, `collect`) is call-compatible.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Runtime override of the worker count (0 = no override). Set via
/// [`set_num_threads`]; takes precedence over the cached environment value.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The default worker count, resolved once per process from
/// `RAYON_NUM_THREADS` / available parallelism.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// Parse a `RAYON_NUM_THREADS`-style value: a positive integer wins,
/// everything else (missing, unparseable, or `0`) means "use the default".
fn parse_thread_count(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The machine default: `RAYON_NUM_THREADS` if set to a positive integer,
/// otherwise available parallelism (1 if that cannot be determined).
fn default_num_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        parse_thread_count(std::env::var("RAYON_NUM_THREADS").ok().as_deref()).unwrap_or_else(
            || {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            },
        )
    })
}

/// The number of worker threads parallel pipelines will use: the
/// [`set_num_threads`] override if one is active, otherwise the cached
/// process default (`RAYON_NUM_THREADS` at first use, or the machine's
/// available parallelism).
pub fn current_num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => default_num_threads(),
        n => n,
    }
}

/// Override the worker count at runtime (`0` clears the override and
/// restores the process default).
///
/// This is the supported way for tests and benchmarks to compare thread
/// counts within one process; mutating `RAYON_NUM_THREADS` mid-process is
/// both racy (tests in one binary run concurrently) and ineffective (the
/// variable is read once). The override is process-global; callers that
/// set it should restore `0` afterwards.
pub fn set_num_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Apply `f` to every item on scoped worker threads, preserving input order.
///
/// Panics in workers are re-raised on the caller (as with real rayon).
fn run_chunked<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let mut out: Vec<R> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// A materialised "parallel iterator": adapters execute eagerly across the
/// worker threads and preserve input order.
#[derive(Debug, Clone)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: run_chunked(self.items, f),
        }
    }

    /// Apply `f` in parallel and keep the `Some` results (in input order).
    pub fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync,
    {
        ParIter {
            items: run_chunked(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Keep the items for which `f` returns true (in input order).
    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        self.filter_map(|t| if f(&t) { Some(t) } else { None })
    }

    /// Run `f` on every item in parallel, discarding results.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_chunked(self.items, f);
    }

    /// Collect the (order-preserved) items into any collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items currently in the pipeline.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

/// Drop-in subset of `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Materialise the source and hand it to the parallel adapters.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 2).collect();
        let expected: Vec<usize> = (0..10_000).map(|i| i * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn filter_map_matches_sequential() {
        let par: Vec<usize> = (0..5_000usize)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i + 1))
            .collect();
        let seq: Vec<usize> = (0..5_000)
            .filter_map(|i| (i % 3 == 0).then_some(i + 1))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn filter_and_sum() {
        let s: usize = (0..1_000usize)
            .into_par_iter()
            .filter(|&i| i % 2 == 0)
            .sum();
        assert_eq!(s, (0..1_000).filter(|&i| i % 2 == 0).sum::<usize>());
        assert_eq!((0..7usize).into_par_iter().count(), 7);
    }

    #[test]
    fn empty_and_single_inputs() {
        let out: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let out: Vec<i32> = vec![41].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn borrows_from_the_environment_work() {
        // Scoped threads let closures capture non-'static references.
        let data: Vec<f64> = (0..100).map(f64::from).collect();
        let doubled: Vec<f64> = (0..data.len())
            .into_par_iter()
            .map(|i| data[i] * 2.0)
            .collect();
        assert_eq!(doubled[99], 198.0);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        (0..64usize).into_par_iter().for_each(|i| {
            if i == 63 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn zero_and_garbage_thread_counts_fall_back_to_the_default() {
        // Regression: `RAYON_NUM_THREADS=0` must not flow a zero thread
        // count into chunk sizing. The parse is tested directly — the
        // process-wide default is cached, so tests never mutate the env.
        assert_eq!(super::parse_thread_count(Some("0")), None);
        assert_eq!(super::parse_thread_count(Some("")), None);
        assert_eq!(super::parse_thread_count(Some("-3")), None);
        assert_eq!(super::parse_thread_count(Some("many")), None);
        assert_eq!(super::parse_thread_count(None), None);
        assert_eq!(super::parse_thread_count(Some("1")), Some(1));
        assert_eq!(super::parse_thread_count(Some(" 8 ")), Some(8));
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        // Vary the pool size via the runtime override (not the env, which
        // would race concurrently running tests); order and content must
        // not change.
        let run = || -> Vec<u64> {
            (0..997u64)
                .into_par_iter()
                .map(|i| i.wrapping_mul(0x9E37_79B9))
                .collect()
        };
        super::set_num_threads(1);
        let one = run();
        super::set_num_threads(5);
        let five = run();
        super::set_num_threads(0);
        let auto = run();
        assert_eq!(one, five);
        assert_eq!(one, auto);
    }
}
