//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon) — now a
//! morsel-driven work-stealing scheduler.
//!
//! Earlier revisions split the input into one contiguous chunk per worker,
//! so a single expensive chunk (a skewed rule condition, a hub entity)
//! serialized the whole pipeline behind its worker. This version splits the
//! input into small fixed-size **morsels** instead. Each worker's deque is
//! seeded with a contiguous block of morsel indices; owners pop from the
//! front and, when their own deque runs dry, steal from the back of another
//! worker's deque. Workers append `(morsel index, results)` pairs to a
//! private order buffer; after the join, the buffers are concatenated in
//! morsel-index order.
//!
//! **Determinism argument:** morsel boundaries depend only on the input
//! length and the configured morsel size — never on which worker ran a
//! morsel or in what order. Items inside a morsel are processed in input
//! order, and the final concatenation is by morsel index, so the output is
//! byte-identical to sequential execution at any thread count *and* any
//! morsel size. That is what keeps seeded bootstrap resampling and the
//! grounding digests bit-stable.
//!
//! The worker count defaults to [`std::thread::available_parallelism`] and
//! can be overridden with the `RAYON_NUM_THREADS` environment variable,
//! mirroring the real crate. The morsel size defaults to
//! [`DEFAULT_MORSEL_SIZE`] items and can be overridden with
//! `RAYON_MORSEL_SIZE`. Both variables are read **once** (on first use):
//! `std::env::var` takes a process-wide lock and both getters sit on hot
//! paths. A value of `0` (or anything unparseable) falls back to the
//! default. Tests and benchmarks that need to vary either knob at runtime
//! use [`set_num_threads`] / [`set_morsel_size`] instead of mutating the
//! process environment (env mutation races with concurrently running tests
//! in the same binary).
//!
//! The scheduler keeps cumulative statistics — morsels executed and steals
//! per worker index — readable via [`scheduler_stats`] so benchmarks can
//! prove balance under skew even when wall-clock scaling is invisible
//! (e.g. on a single-core CI container).
//!
//! Swap in the real crate once registry access exists; the API subset here
//! (`prelude::IntoParallelIterator`, `map`, `filter`, `filter_map`,
//! `for_each`, `collect`) is call-compatible.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Runtime override of the worker count (0 = no override). Set via
/// [`set_num_threads`]; takes precedence over the cached environment value.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The default worker count, resolved once per process from
/// `RAYON_NUM_THREADS` / available parallelism.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// Runtime override of the morsel size (0 = no override). Set via
/// [`set_morsel_size`]; takes precedence over the cached environment value.
static MORSEL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The default morsel size, resolved once per process from
/// `RAYON_MORSEL_SIZE`.
static DEFAULT_MORSEL: OnceLock<usize> = OnceLock::new();

/// Morsel size used when neither `RAYON_MORSEL_SIZE` nor
/// [`set_morsel_size`] applies: the scheduling granularity in *items* (for
/// the executor's row pipelines, rows).
pub const DEFAULT_MORSEL_SIZE: usize = 1024;

/// The scheduler aims for at least this many morsels per worker so there is
/// always something to steal: the configured morsel size acts as an *upper
/// bound* and is shrunk when the input is too small to yield
/// `workers × MORSEL_OVERSUBSCRIPTION` morsels at full size. This keeps
/// coarse item streams (a handful of rule conditions, a few row ranges)
/// spread across workers instead of collapsing into one giant morsel.
const MORSEL_OVERSUBSCRIPTION: usize = 4;

/// Parse a `RAYON_NUM_THREADS` / `RAYON_MORSEL_SIZE`-style value: a positive
/// integer wins, everything else (missing, unparseable, or `0`) means "use
/// the default".
fn parse_positive(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The machine default: `RAYON_NUM_THREADS` if set to a positive integer,
/// otherwise available parallelism (1 if that cannot be determined).
fn default_num_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        parse_positive(std::env::var("RAYON_NUM_THREADS").ok().as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    })
}

/// The number of worker threads parallel pipelines will use: the
/// [`set_num_threads`] override if one is active, otherwise the cached
/// process default (`RAYON_NUM_THREADS` at first use, or the machine's
/// available parallelism).
pub fn current_num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => default_num_threads(),
        n => n,
    }
}

/// Override the worker count at runtime (`0` clears the override and
/// restores the process default).
///
/// This is the supported way for tests and benchmarks to compare thread
/// counts within one process; mutating `RAYON_NUM_THREADS` mid-process is
/// both racy (tests in one binary run concurrently) and ineffective (the
/// variable is read once). The override is process-global; callers that
/// set it should restore `0` afterwards.
pub fn set_num_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// The configured morsel size (an upper bound on the scheduling unit): the
/// [`set_morsel_size`] override if one is active, otherwise the cached
/// process default (`RAYON_MORSEL_SIZE` at first use, or
/// [`DEFAULT_MORSEL_SIZE`]).
pub fn current_morsel_size() -> usize {
    match MORSEL_OVERRIDE.load(Ordering::Relaxed) {
        0 => *DEFAULT_MORSEL.get_or_init(|| {
            parse_positive(std::env::var("RAYON_MORSEL_SIZE").ok().as_deref())
                .unwrap_or(DEFAULT_MORSEL_SIZE)
        }),
        n => n,
    }
}

/// Override the morsel size at runtime (`0` clears the override and
/// restores the process default). Output is bit-identical at any morsel
/// size; this knob only moves the balance/overhead trade-off. Like
/// [`set_num_threads`], this is the supported way for tests to sweep morsel
/// sizes — the environment variable is read once per process.
pub fn set_morsel_size(size: usize) {
    MORSEL_OVERRIDE.store(size, Ordering::Relaxed);
}

/// The morsel size actually used for an input of `len` items on `threads`
/// workers: the configured size, shrunk so large inputs always yield at
/// least `threads × MORSEL_OVERSUBSCRIPTION` morsels (there must be enough
/// morsels in flight for stealing to balance skew).
fn effective_morsel_size(len: usize, threads: usize) -> usize {
    let configured = current_morsel_size().max(1);
    let spread = len
        .div_ceil(threads.max(1) * MORSEL_OVERSUBSCRIPTION)
        .max(1);
    configured.min(spread)
}

/// Cumulative scheduler counters (since process start or the last
/// [`reset_scheduler_stats`]). Workers are identified by their index within
/// a run; counts accumulate across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Morsels executed by each worker index, across all parallel runs.
    pub morsels_per_worker: Vec<u64>,
    /// Of those, morsels each worker obtained by stealing from the back of
    /// another worker's deque.
    pub steals_per_worker: Vec<u64>,
    /// Pipeline runs that went through the work-stealing scheduler.
    pub parallel_runs: u64,
    /// Pipeline runs executed inline on the calling thread (single-thread
    /// configuration, or too few items to split). Their morsels are
    /// attributed to worker 0, so stats stay populated on single-core CI.
    pub sequential_runs: u64,
}

impl SchedulerStats {
    /// Total morsels executed across all workers.
    pub fn total_morsels(&self) -> u64 {
        self.morsels_per_worker.iter().sum()
    }

    /// Total steals across all workers.
    pub fn total_steals(&self) -> u64 {
        self.steals_per_worker.iter().sum()
    }

    /// The largest per-worker morsel count.
    pub fn max_worker_morsels(&self) -> u64 {
        self.morsels_per_worker.iter().copied().max().unwrap_or(0)
    }

    /// Mean morsels per tracked worker (0.0 when nothing has run).
    pub fn mean_worker_morsels(&self) -> f64 {
        if self.morsels_per_worker.is_empty() {
            0.0
        } else {
            self.total_morsels() as f64 / self.morsels_per_worker.len() as f64
        }
    }
}

/// Global stats cell. A plain mutex: it is taken once per pipeline *run*
/// (not per morsel), which is noise next to spawning the scoped workers.
static STATS: Mutex<SchedulerStats> = Mutex::new(SchedulerStats {
    morsels_per_worker: Vec::new(),
    steals_per_worker: Vec::new(),
    parallel_runs: 0,
    sequential_runs: 0,
});

/// Lock a mutex, tolerating poison: a panicking worker must still propagate
/// its payload (not a `PoisonError`) to the caller, exactly like real rayon.
fn lock_tolerant<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Snapshot the cumulative scheduler statistics.
pub fn scheduler_stats() -> SchedulerStats {
    lock_tolerant(&STATS).clone()
}

/// Reset all scheduler statistics to zero.
pub fn reset_scheduler_stats() {
    let mut stats = lock_tolerant(&STATS);
    *stats = SchedulerStats::default();
}

/// Fold one run's per-worker `(morsels, steals)` counts into the globals.
fn record_parallel(per_worker: &[(u64, u64)]) {
    let mut stats = lock_tolerant(&STATS);
    if stats.morsels_per_worker.len() < per_worker.len() {
        stats.morsels_per_worker.resize(per_worker.len(), 0);
        stats.steals_per_worker.resize(per_worker.len(), 0);
    }
    for (w, &(morsels, steals)) in per_worker.iter().enumerate() {
        stats.morsels_per_worker[w] += morsels;
        stats.steals_per_worker[w] += steals;
    }
    stats.parallel_runs += 1;
}

/// Record an inline (sequential) run of `morsels` scheduling units.
fn record_sequential(morsels: u64) {
    let mut stats = lock_tolerant(&STATS);
    if stats.morsels_per_worker.is_empty() {
        stats.morsels_per_worker.push(0);
        stats.steals_per_worker.push(0);
    }
    stats.morsels_per_worker[0] += morsels;
    stats.sequential_runs += 1;
}

/// Pop a morsel index from the *front* of a worker's own deque.
fn pop_own(queue: &Mutex<VecDeque<usize>>) -> Option<usize> {
    lock_tolerant(queue).pop_front()
}

/// Steal a morsel index from the *back* of a victim's deque.
fn steal_back(queue: &Mutex<VecDeque<usize>>) -> Option<usize> {
    lock_tolerant(queue).pop_back()
}

/// The scheduler core: run `per_item` over every item on the work-stealing
/// pool, collecting whatever it pushes into the output — in input order.
///
/// `per_item` pushes zero or more results per item, which lets `map`,
/// `filter`, `filter_map` and `for_each` all share this path without any
/// per-item `Option` round-trips or per-chunk `Vec` materialisation: the
/// only full pass over the input is the move into the `Option` slot buffer
/// that lets workers extract owned items from disjoint `&mut` morsel slices
/// without unsafe code.
///
/// Panics in workers are re-raised on the caller (as with real rayon).
fn run_morsels<T, R, F>(items: Vec<T>, per_item: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T, &mut Vec<R>) + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let threads = current_num_threads();
    let morsel = effective_morsel_size(len, threads);
    let n_morsels = len.div_ceil(morsel);
    if threads <= 1 || n_morsels <= 1 {
        let mut out = Vec::with_capacity(len);
        for item in items {
            per_item(item, &mut out);
        }
        record_sequential(n_morsels as u64);
        return out;
    }

    // Wrap items in `Option` slots so workers can move them out of disjoint
    // `&mut` morsel slices (`slot.take()`) without unsafe code. Each morsel
    // slice sits behind its own mutex purely to satisfy the borrow checker:
    // every morsel index is claimed by exactly one worker, so the locks are
    // uncontended.
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let morsel_cells: Vec<Mutex<&mut [Option<T>]>> =
        slots.chunks_mut(morsel).map(Mutex::new).collect();

    let workers = threads.min(n_morsels);
    // Seed each worker's deque with a contiguous block of morsel indices:
    // owners pop from the front (cache-friendly sequential sweep), thieves
    // take from the back (the work farthest from the owner's cursor).
    let seed = n_morsels.div_ceil(workers);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = (w * seed).min(n_morsels);
            let hi = ((w + 1) * seed).min(n_morsels);
            Mutex::new((lo..hi).collect())
        })
        .collect();

    let per_item = &per_item;
    let queues = &queues;
    let morsel_cells = &morsel_cells;
    let mut order_buffers: Vec<(usize, Vec<R>)> = Vec::with_capacity(n_morsels);
    let mut per_worker: Vec<(u64, u64)> = vec![(0, 0); workers];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut buffer: Vec<(usize, Vec<R>)> = Vec::new();
                    let mut morsels_done = 0u64;
                    let mut steals = 0u64;
                    loop {
                        // Own queue first; on exhaustion, scan the other
                        // workers (starting at our right neighbour) and
                        // steal from the back of the first non-empty deque.
                        let next = pop_own(&queues[w]).or_else(|| {
                            (1..workers).find_map(|offset| {
                                let victim = (w + offset) % workers;
                                let stolen = steal_back(&queues[victim]);
                                if stolen.is_some() {
                                    steals += 1;
                                }
                                stolen
                            })
                        });
                        let Some(index) = next else { break };
                        let mut cell = lock_tolerant(&morsel_cells[index]);
                        let mut out = Vec::with_capacity(cell.len());
                        for slot in cell.iter_mut() {
                            if let Some(item) = slot.take() {
                                per_item(item, &mut out);
                            }
                        }
                        buffer.push((index, out));
                        morsels_done += 1;
                    }
                    (buffer, morsels_done, steals)
                })
            })
            .collect();
        for (w, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok((buffer, morsels, steals)) => {
                    order_buffers.extend(buffer);
                    per_worker[w] = (morsels, steals);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    record_parallel(&per_worker);

    // Concatenate the per-worker order buffers in morsel-index order: the
    // output is identical to sequential execution regardless of which
    // worker ran which morsel.
    order_buffers.sort_unstable_by_key(|&(index, _)| index);
    let total: usize = order_buffers.iter().map(|(_, part)| part.len()).sum();
    let mut out = Vec::with_capacity(total);
    for (_, part) in order_buffers {
        out.extend(part);
    }
    out
}

/// A materialised "parallel iterator": adapters execute eagerly across the
/// worker threads and preserve input order.
#[derive(Debug, Clone)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: run_morsels(self.items, |item, out| out.push(f(item))),
        }
    }

    /// Apply `f` in parallel and keep the `Some` results (in input order).
    pub fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync,
    {
        ParIter {
            items: run_morsels(self.items, |item, out| out.extend(f(item))),
        }
    }

    /// Keep the items for which `f` returns true (in input order).
    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        ParIter {
            items: run_morsels(self.items, |item, out| {
                if f(&item) {
                    out.push(item);
                }
            }),
        }
    }

    /// Run `f` on every item in parallel, discarding results.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_morsels::<_, (), _>(self.items, |item, _| f(item));
    }

    /// Collect the (order-preserved) items into any collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items currently in the pipeline.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

/// Drop-in subset of `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Materialise the source and hand it to the parallel adapters.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Tests that mutate (or assert on) the process-global thread/morsel
    /// knobs must not interleave: `cargo test` runs tests in this binary
    /// concurrently.
    static KNOBS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn hold_knobs() -> std::sync::MutexGuard<'static, ()> {
        KNOBS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 2).collect();
        let expected: Vec<usize> = (0..10_000).map(|i| i * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn filter_map_matches_sequential() {
        let par: Vec<usize> = (0..5_000usize)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i + 1))
            .collect();
        let seq: Vec<usize> = (0..5_000)
            .filter_map(|i| (i % 3 == 0).then_some(i + 1))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn filter_and_sum() {
        let s: usize = (0..1_000usize)
            .into_par_iter()
            .filter(|&i| i % 2 == 0)
            .sum();
        assert_eq!(s, (0..1_000).filter(|&i| i % 2 == 0).sum::<usize>());
        assert_eq!((0..7usize).into_par_iter().count(), 7);
    }

    #[test]
    fn empty_and_single_inputs() {
        let out: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let out: Vec<i32> = vec![41].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn borrows_from_the_environment_work() {
        // Scoped threads let closures capture non-'static references.
        let data: Vec<f64> = (0..100).map(f64::from).collect();
        let doubled: Vec<f64> = (0..data.len())
            .into_par_iter()
            .map(|i| data[i] * 2.0)
            .collect();
        assert_eq!(doubled[99], 198.0);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        (0..64usize).into_par_iter().for_each(|i| {
            if i == 63 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn zero_and_garbage_knob_values_fall_back_to_the_default() {
        // Regression: `RAYON_NUM_THREADS=0` / `RAYON_MORSEL_SIZE=0` must not
        // flow a zero into chunk sizing. The parse is tested directly — the
        // process-wide defaults are cached, so tests never mutate the env.
        assert_eq!(super::parse_positive(Some("0")), None);
        assert_eq!(super::parse_positive(Some("")), None);
        assert_eq!(super::parse_positive(Some("-3")), None);
        assert_eq!(super::parse_positive(Some("many")), None);
        assert_eq!(super::parse_positive(None), None);
        assert_eq!(super::parse_positive(Some("1")), Some(1));
        assert_eq!(super::parse_positive(Some(" 8 ")), Some(8));
        assert!(super::current_num_threads() >= 1);
        assert!(super::current_morsel_size() >= 1);
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        // Vary the pool size via the runtime override (not the env, which
        // would race concurrently running tests); order and content must
        // not change.
        let _guard = hold_knobs();
        let run = || -> Vec<u64> {
            (0..997u64)
                .into_par_iter()
                .map(|i| i.wrapping_mul(0x9E37_79B9))
                .collect()
        };
        super::set_num_threads(1);
        let one = run();
        super::set_num_threads(5);
        let five = run();
        super::set_num_threads(0);
        let auto = run();
        assert_eq!(one, five);
        assert_eq!(one, auto);
    }

    #[test]
    fn results_are_independent_of_morsel_size() {
        let _guard = hold_knobs();
        let run = || -> Vec<u64> {
            (0..4_001u64)
                .into_par_iter()
                .filter_map(|i| (i % 5 != 0).then(|| i.wrapping_mul(0x51_7C_C1_B7)))
                .collect()
        };
        super::set_num_threads(4);
        let mut outs = Vec::new();
        for morsel in [1, 7, 1024, usize::MAX / 4] {
            super::set_morsel_size(morsel);
            outs.push(run());
        }
        super::set_morsel_size(0);
        super::set_num_threads(0);
        let baseline = run();
        for out in outs {
            assert_eq!(out, baseline, "output must not depend on morsel size");
        }
    }

    #[test]
    fn effective_morsel_size_is_capped_by_oversubscription() {
        let _guard = hold_knobs();
        // Large inputs honour the configured size...
        super::set_morsel_size(1024);
        assert_eq!(super::effective_morsel_size(1_000_000, 4), 1024);
        // ...small inputs shrink it so every worker still gets morsels.
        assert_eq!(super::effective_morsel_size(14, 4), 1);
        assert_eq!(super::effective_morsel_size(64, 4), 4);
        // A huge configured size is clamped to the oversubscription spread.
        super::set_morsel_size(usize::MAX / 2);
        assert_eq!(super::effective_morsel_size(1_000_000, 4), 62_500);
        super::set_morsel_size(0);
    }

    #[test]
    fn scheduler_stats_are_populated_and_resettable() {
        // Stats are process-global and this binary's tests run
        // concurrently, so only assert monotone growth — not exact counts.
        let before = super::scheduler_stats().total_morsels();
        let _: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i).collect();
        let after = super::scheduler_stats();
        assert!(after.total_morsels() > before, "a run must record morsels");
        assert!(after.parallel_runs + after.sequential_runs > 0);
        assert!(after.max_worker_morsels() as f64 >= after.mean_worker_morsels());
    }

    #[test]
    fn skewed_workloads_balance_by_stealing() {
        // One morsel region is ~100× more expensive than the rest. With
        // contiguous seeding the slow region lands on one worker; stealing
        // must spread it. We can only observe balance through the stats
        // (the container may be single-core), and other tests run
        // concurrently, so run a dedicated pool size and check the run's
        // own deltas via a quiesced before/after diff would race — instead
        // just assert correctness of the output under skew.
        let _guard = hold_knobs();
        super::set_num_threads(4);
        super::set_morsel_size(16);
        let out: Vec<u64> = (0..2_048u64)
            .into_par_iter()
            .map(|i| {
                let mut acc = i;
                let spins = if i < 256 { 2_000 } else { 10 };
                for _ in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            })
            .collect();
        super::set_morsel_size(0);
        super::set_num_threads(0);
        let expected: Vec<u64> = (0..2_048u64)
            .map(|i| {
                let mut acc = i;
                let spins = if i < 256 { 2_000 } else { 10 };
                for _ in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            })
            .collect();
        assert_eq!(out, expected);
    }
}
