//! Offline stand-in for `serde_json`.
//!
//! The vendored `serde` makes `Serialize` a marker over `Debug`, so the only
//! faithful rendering available offline is the pretty `Debug` form. The
//! experiment binaries use this purely for best-effort artefact files under
//! `target/experiments/`; the printed tables remain the primary output.
//! Output files therefore contain Rust debug notation, not strict JSON,
//! until the real crates are restored.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Serialisation error (the stub never actually fails).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Render a value in pretty form (Debug-based in this offline stub).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(format!("{value:#?}"))
}

/// Render a value in compact form (Debug-based in this offline stub).
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(format!("{value:?}"))
}
