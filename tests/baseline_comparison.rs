//! Integration test: CaRL against the universal-table baseline on data with
//! known ground truth (the comparison behind Figure 8 and Table 5).
//!
//! The universal table duplicates responses (one row per join path) and has
//! no notion of interference, so its estimate of the prestige effect at
//! single-blind venues is further from the planted truth than CaRL's.

use carl::baseline::{universal_ate_on, UniversalBaseline};
use carl::{CarlEngine, EstimatorKind};
use carl_datagen::{generate_synthetic_review, SyntheticReviewConfig};
use reldb::{universal_table, Value};

#[test]
fn carl_is_closer_to_the_truth_than_the_universal_table() {
    let config = SyntheticReviewConfig::small(123);
    let ds = generate_synthetic_review(&config);
    let truth_overall = ds.ground_truth.overall_single_blind.expect("known truth"); // 1.5
    let truth_isolated = ds.ground_truth.isolated_single_blind.expect("known truth"); // 1.0

    // CaRL's ATE at single-blind venues (intervening on the unit and its peers).
    let engine = CarlEngine::new(ds.instance.clone(), &ds.rules).expect("model binds");
    let carl_ate = engine
        .answer_str("Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = false")
        .expect("query answers")
        .as_ate()
        .expect("ATE query")
        .ate;
    let carl_error = (carl_ate - truth_overall).abs();
    assert!(
        carl_error < 0.3,
        "CaRL ATE {carl_ate} vs truth {truth_overall}"
    );

    // Universal-table estimate restricted to single-blind venues.
    let flat = universal_table(&ds.instance).expect("join succeeds");
    let single_blind_rows = flat.filter_rows(|i| {
        flat.cell(i, "DoubleBlind")
            .ok()
            .and_then(Value::as_bool)
            .map(|b| !b)
            .unwrap_or(false)
    });
    let baseline = UniversalBaseline {
        treatment: "Prestige".into(),
        outcome: "Score".into(),
        covariates: Some(vec!["Qualification".into(), "Quality".into()]),
        estimator: EstimatorKind::Regression,
    };
    let flat_ate = universal_ate_on(&single_blind_rows, &ds.instance, &baseline)
        .expect("baseline runs")
        .ate;

    // The flat analysis cannot see the interference channel at all, so it is
    // further from the overall effect than CaRL — and it also fails to reach
    // the isolated effect as well as CaRL's own-treatment estimate does.
    let flat_error = (flat_ate - truth_overall).abs();
    assert!(
        carl_error < flat_error,
        "CaRL error {carl_error} should beat universal-table error {flat_error} (flat ATE {flat_ate})"
    );
    assert!(
        flat_ate < truth_overall,
        "the universal table under-estimates the overall effect (got {flat_ate})"
    );
    // Sanity: the flat estimate is at least in the vicinity of the isolated
    // effect (it adjusts for quality/qualification but ignores peers).
    assert!((flat_ate - truth_isolated).abs() < 0.5);
}

#[test]
fn universal_table_drops_the_interference_structure() {
    let config = SyntheticReviewConfig::small(5);
    let ds = generate_synthetic_review(&config);
    let flat = universal_table(&ds.instance).expect("join succeeds");
    // The flat table has one row per paper (writer ⋈ paper ⋈ venue) and no
    // trace of the collaboration network — exactly the information the
    // universal-table analyst loses.
    assert_eq!(flat.row_count(), config.papers);
    assert!(flat.has_column("Prestige"));
    assert!(flat.has_column("Score"));
    assert!(!flat.column_names().iter().any(|c| c.contains("Collab")));
}

#[test]
fn universal_table_duplicates_multi_author_submissions() {
    use carl_datagen::{generate_reviewdata, ReviewConfig};
    let config = ReviewConfig::small(5);
    let ds = generate_reviewdata(&config);
    let flat = universal_table(&ds.instance).expect("join succeeds");
    // With multi-author papers every submission appears once per author, so
    // the flat table has strictly more rows than there are submissions —
    // the duplication hazard the paper warns about.
    assert!(flat.row_count() > config.papers);
}
