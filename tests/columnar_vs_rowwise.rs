//! Differential test harness: the columnar estimation data path versus the
//! legacy row-oriented reference path.
//!
//! The columnar engine (contiguous `f64` columns built during grounding,
//! zero-copy slices into the estimators, grounding cache) must reproduce the
//! seed's row-based results **bit for bit** — same unit tables, same ATEs,
//! same peer-effect decompositions — on every example query and every
//! integration scenario in the repository. The row path
//! ([`carl::rowwise`], reached via `CarlEngine::{prepare,answer}_rowwise`)
//! preserves the seed implementation verbatim and bypasses the grounding
//! cache, so a cache bug cannot mask itself by affecting both engines.
//!
//! Mirrors the methodology of checkers that validate a compact indexed
//! representation against a reference semantics: the fast representation is
//! only trusted because this harness proves it equivalent.

use carl::{CarlEngine, EmbeddingKind, EstimatorKind, QueryAnswer};
use carl_datagen::{
    generate_mimic, generate_nis, generate_reviewdata, generate_synthetic_review, MimicConfig,
    NisConfig, ReviewConfig, SyntheticReviewConfig,
};
use reldb::Instance;

/// Assert two floats are bit-identical (`NaN`s of the same bit pattern
/// included). The ISSUE's 1e-12 tolerance is implied: bit-identity is the
/// strictest version of it.
#[track_caller]
fn assert_bits(label: &str, a: f64, b: f64) {
    assert!(
        a.to_bits() == b.to_bits(),
        "{label}: columnar {a:?} ({:#018x}) != rowwise {b:?} ({:#018x})",
        a.to_bits(),
        b.to_bits()
    );
}

/// Run `query` through both engines and assert bit-identical answers
/// (or an identical error disposition).
fn assert_query_identical(engine: &CarlEngine, query: &str) {
    let columnar = engine.answer_str(query);
    let rowwise = engine.answer_str_rowwise(query);
    match (columnar, rowwise) {
        (Ok(c), Ok(r)) => match (&c, &r) {
            (QueryAnswer::Ate(c), QueryAnswer::Ate(r)) => {
                assert_bits(&format!("{query}: ate"), c.ate, r.ate);
                assert_bits(
                    &format!("{query}: naive"),
                    c.naive_difference,
                    r.naive_difference,
                );
                assert_bits(
                    &format!("{query}: treated_mean"),
                    c.treated_mean,
                    r.treated_mean,
                );
                assert_bits(
                    &format!("{query}: control_mean"),
                    c.control_mean,
                    r.control_mean,
                );
                assert_bits(
                    &format!("{query}: correlation"),
                    c.correlation,
                    r.correlation,
                );
                assert_eq!(c.n_treated, r.n_treated, "{query}: n_treated");
                assert_eq!(c.n_control, r.n_control, "{query}: n_control");
                assert_eq!(c.n_units, r.n_units, "{query}: n_units");
            }
            (QueryAnswer::PeerEffects(c), QueryAnswer::PeerEffects(r)) => {
                assert_bits(&format!("{query}: aie"), c.aie, r.aie);
                assert_bits(&format!("{query}: are"), c.are, r.are);
                assert_bits(&format!("{query}: aoe"), c.aoe, r.aoe);
                assert_bits(
                    &format!("{query}: naive"),
                    c.naive_difference,
                    r.naive_difference,
                );
                assert_bits(
                    &format!("{query}: correlation"),
                    c.correlation,
                    r.correlation,
                );
                assert_eq!(c.n_units, r.n_units, "{query}: n_units");
                assert_eq!(c.n_units_with_peers, r.n_units_with_peers, "{query}");
                assert_eq!(c.peer_regime, r.peer_regime, "{query}");
            }
            _ => panic!("{query}: answer kinds diverged"),
        },
        (Err(c), Err(r)) => {
            assert_eq!(
                c.to_string(),
                r.to_string(),
                "{query}: error messages diverged"
            );
        }
        (c, r) => panic!(
            "{query}: disposition diverged (columnar ok: {}, rowwise ok: {})",
            c.is_ok(),
            r.is_ok()
        ),
    }
}

/// Prepare `query` through both engines and assert the unit tables agree
/// column by column, bit for bit.
fn assert_unit_table_identical(engine: &CarlEngine, query: &str) {
    let columnar = engine.prepare_str(query).expect("columnar prepare");
    let rowwise = engine
        .prepare_rowwise(&carl::carl_lang::parse_query(query).expect("query parses"))
        .expect("rowwise prepare");
    let c = &columnar.unit_table;
    let r = &rowwise.unit_table;
    assert_eq!(c.len(), r.len(), "{query}: row counts");
    assert_eq!(c.units, r.units, "{query}: unit keys");
    assert_eq!(c.peer_counts, r.peer_counts, "{query}: peer counts");
    assert_eq!(
        c.peer_treatment_cols, r.peer_treatment_cols,
        "{query}: peer columns"
    );
    assert_eq!(
        c.covariate_cols, r.covariate_cols,
        "{query}: covariate columns"
    );
    // Every numeric column, bit for bit. The rowwise table extracts per-row
    // `Value`s; the columnar table filled contiguous storage directly.
    for name in c.column_names() {
        let fast = c.column(name).expect("columnar column");
        let slow = r.table.column_f64(name).expect("rowwise column");
        assert_eq!(fast.len(), slow.len(), "{query}: column {name}");
        for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert_bits(&format!("{query}: column {name} row {i}"), *a, *b);
        }
    }
}

/// The paper's running example (Figure 2 / Table 1) — the scenario of
/// `tests/end_to_end_paper_example.rs` and `examples/quickstart.rs`.
#[test]
fn review_example_queries_are_identical() {
    const RULES: &str = r#"
        Prestige[A]  <= Qualification[A]              WHERE Person(A)
        Quality[S]   <= Qualification[A], Prestige[A] WHERE Author(A, S)
        Score[S]     <= Prestige[A]                   WHERE Author(A, S)
        Score[S]     <= Quality[S]                    WHERE Submission(S)
        AVG_Score[A] <= Score[S]                      WHERE Author(A, S)
    "#;
    let engine = CarlEngine::new(Instance::review_example(), RULES).expect("model binds");
    for query in [
        "AVG_Score[A] <= Prestige[A]?",
        "Score[S] <= Prestige[A]?",
        "AVG_Score[A] <= Prestige[A]? WHERE Qualification[A] >= 10",
        "Score[S] <= Prestige[A]? WHERE Submitted(S, C), Blind[C] = true",
    ] {
        assert_unit_table_identical(&engine, query);
        // Three units are too few to estimate: both paths must agree on
        // the failure too.
        assert_query_identical(&engine, query);
    }
}

/// The synthetic-review scenarios of `tests/ground_truth_recovery.rs` and
/// `tests/effect_decomposition.rs`: ATE and every peer regime, across all
/// estimators and embeddings.
#[test]
fn synthetic_review_is_identical_across_estimators_and_regimes() {
    // Reduced scale: the comparison is exact (bit-identity), so statistical
    // power is irrelevant — only coverage of the code paths matters, and the
    // legacy row path is intentionally quadratic.
    let ds = generate_synthetic_review(&SyntheticReviewConfig {
        authors: 250,
        institutions: 20,
        papers: 1_200,
        venues: 10,
        ..SyntheticReviewConfig::small(42)
    });
    let single = "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = false";
    let double = "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = true";

    // Unit tables once, with the default embedding.
    let engine = CarlEngine::new(ds.instance.clone(), &ds.rules).expect("model binds");
    assert_unit_table_identical(&engine, single);
    assert_unit_table_identical(&engine, double);

    // Every estimator on the ATE queries.
    for estimator in [
        EstimatorKind::Regression,
        EstimatorKind::PropensityMatching,
        EstimatorKind::Subclassification,
        EstimatorKind::Ipw,
        EstimatorKind::Naive,
    ] {
        let mut engine = CarlEngine::new(ds.instance.clone(), &ds.rules).expect("model binds");
        engine.set_estimator(estimator);
        assert_query_identical(&engine, single);
        assert_query_identical(&engine, double);
    }

    // Every peer regime (the effect_decomposition scenario).
    let engine = CarlEngine::new(ds.instance.clone(), &ds.rules).expect("model binds");
    for regime in [
        "ALL",
        "NONE",
        "MORE THAN 33%",
        "LESS THAN 50%",
        "AT LEAST 2",
        "AT MOST 1",
        "EXACTLY 1",
    ] {
        assert_query_identical(&engine, &format!("{single} WHEN {regime} PEERS TREATED"));
    }

    // Every embedding (including auto-sized padding).
    for embedding in [
        EmbeddingKind::Mean,
        EmbeddingKind::Median,
        EmbeddingKind::Moments(3),
        EmbeddingKind::Padding(0),
    ] {
        let mut engine = CarlEngine::new(ds.instance.clone(), &ds.rules).expect("model binds");
        engine.set_embedding(embedding);
        assert_unit_table_identical(&engine, single);
        assert_query_identical(&engine, single);
    }
}

/// The healthcare queries of `examples/healthcare_insurance.rs` and
/// `tests/language_pipeline.rs` (MIMIC-like data, SUTVA special case).
#[test]
fn mimic_queries_are_identical() {
    let ds = generate_mimic(&MimicConfig {
        patients: 800,
        caregivers: 40,
        drugs: 20,
        ..MimicConfig::small(99)
    });
    let engine = CarlEngine::new(ds.instance.clone(), &ds.rules).expect("model binds");
    for query in &ds.queries {
        assert_unit_table_identical(&engine, query);
        assert_query_identical(&engine, query);
    }
}

/// The NIS query of `examples/hospital_size.rs` (Table 3's query 35).
#[test]
fn nis_query_is_identical() {
    let ds = generate_nis(&NisConfig {
        admissions: 1_000,
        hospitals: 40,
        ..NisConfig::small(12)
    });
    let engine = CarlEngine::new(ds.instance.clone(), &ds.rules).expect("model binds");
    for query in &ds.queries {
        assert_unit_table_identical(&engine, query);
        assert_query_identical(&engine, query);
    }
}

/// The REVIEWDATA corpus of `examples/peer_review_effects.rs` and
/// `tests/baseline_comparison.rs`: blinding-regime ATEs plus the
/// peer-effects decomposition.
#[test]
fn reviewdata_queries_are_identical() {
    let ds = generate_reviewdata(&ReviewConfig::small(5));
    let engine = CarlEngine::new(ds.instance.clone(), &ds.rules).expect("model binds");
    for blind in ["false", "true"] {
        let query = format!("Score[S] <= Prestige[A]? WHERE Submitted(S, C), Blind[C] = {blind}");
        assert_unit_table_identical(&engine, &query);
        assert_query_identical(&engine, &query);
    }
    assert_query_identical(
        &engine,
        "Score[S] <= Prestige[A]? WHERE Submitted(S, C), Blind[C] = false WHEN ALL PEERS TREATED",
    );
}
