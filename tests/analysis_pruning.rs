//! Differential harness for the whole-program analysis consumers: with
//! abstract-interpretation pruning ON (the default) versus OFF, every causal
//! answer must be **bit-identical** ([`carl::digest_answer`]) across the five
//! evaluation datasets, across dead-rule-augmented programs (including
//! deadness only provable under schema domain hints), across fuzzed
//! programs, and across worker-thread counts {1, 4}.
//!
//! It also pins the patch-safety upgrade: a program whose *dead* rule reads
//! an attribute in a condition comparison used to force every commit
//! touching that attribute down the cold-rebuild path (the legacy
//! `attribute_delta_patchable` rescan blocked on all comparison reads); the
//! precomputed [`carl::PatchSafety`] screen ignores dead readers, so the
//! commit now patches — bit-identical to a cold engine, clean under
//! [`carl::check_history`], and with zero per-commit screen rescans
//! ([`carl::CommitStats::screen_rescans`]).
//!
//! The pruning toggle and the rayon worker count are process-global, so
//! every test serialises on [`PRUNING_LOCK`].

use carl::{digest_answer, set_analysis_pruning, CarlEngine, HistoryLog, SnapshotEngine};
use carl_datagen::{
    generate_mimic, generate_nis, generate_reviewdata, generate_synthetic_review, MimicConfig,
    NisConfig, ReviewConfig, SyntheticReviewConfig,
};
use proptest::prelude::*;
use reldb::{Instance, Mutation, Value};
use std::sync::Mutex;

/// Serialises tests that flip the process-global pruning toggle or the
/// rayon worker count.
static PRUNING_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    PRUNING_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores pruning ON and the default worker count even if a test panics.
struct Restore;
impl Drop for Restore {
    fn drop(&mut self) {
        set_analysis_pruning(true);
        rayon::set_num_threads(0);
    }
}

/// The paper's Figure 2 example program (the `Instance::review_example`
/// schema: Person/Submission/Conference, Author/Submitted).
const REVIEW_RULES: &str = r#"
    Prestige[A]  <= Qualification[A]              WHERE Person(A)
    Quality[S]   <= Qualification[A], Prestige[A] WHERE Author(A, S)
    Score[S]     <= Prestige[A]                   WHERE Author(A, S)
    Score[S]     <= Quality[S]                    WHERE Submission(S)
    AVG_Score[A] <= Score[S]                      WHERE Author(A, S)
"#;

const REVIEW_QUERIES: &[&str] = &[
    "AVG_Score[A] <= Prestige[A]?",
    "Score[S] <= Prestige[A]?",
    "Score[S] <= Prestige[A]? WHERE Submitted(S, C), Blind[C] = true",
];

/// Build an engine under the given pruning setting and digest every query.
/// Errors digest too ([`digest_answer`] folds the error text), so a query
/// that fails must fail identically on both sides.
fn digests(pruning: bool, instance: &Instance, rules: &str, queries: &[String]) -> Vec<String> {
    set_analysis_pruning(pruning);
    assert_eq!(carl::analysis_pruning(), pruning);
    let engine = CarlEngine::new(instance.clone(), rules).expect("model binds");
    queries
        .iter()
        .map(|q| format!("{q} => {}", digest_answer(&engine.answer_str(q))))
        .collect()
}

/// Assert pruning ON and OFF agree bit-for-bit on every query, at worker
/// thread counts 1 and 4.
fn assert_pruning_inert(instance: &Instance, rules: &str, queries: &[String]) {
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        let on = digests(true, instance, rules, queries);
        let off = digests(false, instance, rules, queries);
        assert_eq!(on, off, "pruning changed answers at {threads} thread(s)");
    }
    set_analysis_pruning(true);
    rayon::set_num_threads(0);
}

/// Pruning is inert on all five evaluation datasets with their stock
/// models and experiment queries.
#[test]
fn pruning_is_inert_on_the_five_datasets() {
    let _guard = lock();
    let _restore = Restore;

    let review_queries: Vec<String> = REVIEW_QUERIES.iter().map(|q| q.to_string()).collect();
    assert_pruning_inert(&Instance::review_example(), REVIEW_RULES, &review_queries);

    let datasets = [
        generate_synthetic_review(&SyntheticReviewConfig::small(7)),
        generate_mimic(&MimicConfig::small(7)),
        generate_nis(&NisConfig::small(7)),
        generate_reviewdata(&ReviewConfig::small(7)),
    ];
    for ds in &datasets {
        assert_pruning_inert(&ds.instance, &ds.rules, &ds.queries);
    }
}

/// Dead-rule-augmented programs: rules whose conditions are provably
/// unsatisfiable — by interval conflict, by equality conflict, and by
/// deadness only the schema's `Bool` domain hint can prove — ground to
/// nothing, so skipping them (pruning ON) is bit-identical to grounding
/// them against every row (pruning OFF).
#[test]
fn pruning_is_inert_on_dead_rule_programs() {
    let _guard = lock();
    let _restore = Restore;
    let instance = Instance::review_example();
    let queries: Vec<String> = REVIEW_QUERIES.iter().map(|q| q.to_string()).collect();

    let dead_rules = [
        // Interval conflict on a Float attribute.
        "Quality[S] <= Prestige[A] WHERE Author(A, S), Score[S] > 9000.0, Score[S] < -9000.0\n",
        // Equality conflict (same attribute pinned to two constants).
        "Quality[S] <= Prestige[A] WHERE Author(A, S), Qualification[A] = 1.0, \
         Qualification[A] = 2.0\n",
        // Dead only under the schema's Bool hint: integral tightening turns
        // 0 < Blind < 1 into an empty interval. Domain-blind analysis
        // cannot prove this one.
        "Score[S] <= Quality[S] WHERE Submission(S), Submitted(S, C), Blind[C] > 0.0, \
         Blind[C] < 1.0\n",
        // Bool attribute pinned to a non-boolean constant (Bool vs Int
        // never compare equal).
        "Score[S] <= Quality[S] WHERE Submission(S), Submitted(S, C), Blind[C] = 7\n",
    ];
    for dead in &dead_rules {
        let rules = format!("{REVIEW_RULES}{dead}");
        assert_pruning_inert(&instance, &rules, &queries);
    }
    // All dead rules at once.
    let rules = format!("{REVIEW_RULES}{}", dead_rules.concat());
    assert_pruning_inert(&instance, &rules, &queries);
}

/// The patch-safety regression: the legacy per-commit screen refused to
/// patch any commit touching an attribute read by *any* condition
/// comparison, dead or not. The precomputed screen only blocks on live
/// readers, so a commit touching `Score` — read exclusively by a dead
/// rule's comparisons — now takes the incremental fast path, bit-identical
/// to a cold rebuild and clean under the history oracle.
#[test]
fn dead_comparison_reads_no_longer_force_cold_rebuilds() {
    let _guard = lock();
    let _restore = Restore;
    set_analysis_pruning(true);

    let ds = generate_synthetic_review(&SyntheticReviewConfig::small(29));
    // Live chain reading Score through an aggregate, plus a dead rule whose
    // condition comparisons read Score. Under the legacy screen the dead
    // rule alone made Score un-patchable.
    let rules = r#"
        Prestige[A] <= Qualification[A]  WHERE Person(A)
        Score[P]    <= Prestige[A]       WHERE Writes(A, P)
        AVG_Score[A] <= Score[P]         WHERE Writes(A, P)
        Quality[P]  <= Prestige[A]       WHERE Writes(A, P), Score[P] > 9000.0, Score[P] < -9000.0
    "#;
    let queries = ["AVG_Score[A] <= Prestige[A]?", "Score[P] <= Prestige[A]?"];

    let service = SnapshotEngine::new(ds.instance.clone(), rules).expect("model binds");
    // The precomputed screen must not list Score as unsafe: its only
    // comparison readers are dead.
    let safety = service.snapshot().engine().patch_safety().clone();
    assert!(
        !safety.render().contains("`Score`:"),
        "Score must not be screened unsafe:\n{}",
        safety.render()
    );

    let log = HistoryLog::new();
    let observe = |log: &HistoryLog| {
        for query in &queries {
            let (epoch, result) = service.answer_str(query);
            log.record_query(0, epoch, query, &result);
        }
    };
    observe(&log);

    for round in 0..3u32 {
        let batch = vec![Mutation::SetAttribute {
            attr: "Score".into(),
            key: vec![Value::from(format!("p{round}"))],
            value: Value::Float(3.0 + f64::from(round)),
        }];
        let snap = service.commit(&batch).expect("Score commit applies");
        log.record_install(&snap, &batch);
        observe(&log);

        // Bit-identical to a from-scratch engine over the same instance.
        let cold = CarlEngine::new(snap.instance().clone(), rules).expect("cold engine binds");
        for query in &queries {
            assert_eq!(
                digest_answer(&snap.engine().answer_str(query)),
                digest_answer(&cold.answer_str(query)),
                "round {round}: patched epoch diverged from cold for {query}"
            );
        }
    }

    let stats = service.commit_stats();
    assert_eq!(
        (stats.incremental, stats.cold),
        (3, 0),
        "commits touching a dead rule's comparison read must patch: {stats:?}"
    );
    assert_eq!(
        stats.screen_rescans, 0,
        "the per-commit attribute_delta_patchable rescan must be gone"
    );

    let violations =
        carl::check_history(&ds.instance, service.program(), &log.events()).expect("checker runs");
    assert_eq!(
        violations,
        vec![],
        "patched epochs broke the history oracle"
    );
}

/// Every commit previously on the fast path stays there: PatchSafety's
/// blocked set is a subset of the legacy screen's (live comparison reads
/// and aggregate heads only), so the stock cascade program from the
/// incremental-vs-cold harness still patches all attribute-only batches —
/// now without any per-commit rescan.
#[test]
fn previously_fast_pathed_commits_still_fast_path_without_rescans() {
    let _guard = lock();
    let _restore = Restore;
    set_analysis_pruning(true);

    let ds = generate_synthetic_review(&SyntheticReviewConfig::small(31));
    let rules = r#"
        Prestige[A] <= Qualification[A]              WHERE Person(A)
        Quality[P]  <= Qualification[A]              WHERE Writes(A, P)
        Score[P]    <= Quality[P]                    WHERE Paper(P)
        Score[P]    <= Prestige[A]                   WHERE Writes(A, P)
        AVG_Score[A] <= Score[P]                     WHERE Writes(A, P)
    "#;
    let service = SnapshotEngine::new(ds.instance, rules).expect("model binds");
    let _ = service.answer_str("AVG_Score[A] <= Prestige[A]?");
    for round in 0..4u32 {
        service
            .commit(&[Mutation::SetAttribute {
                attr: "Qualification".into(),
                key: vec![Value::from(format!("a{round}"))],
                value: Value::Float(f64::from(round)),
            }])
            .expect("Qualification commit applies");
    }
    let stats = service.commit_stats();
    assert_eq!((stats.incremental, stats.cold), (4, 0), "{stats:?}");
    assert_eq!(stats.screen_rescans, 0, "no per-commit screen rescans");
}

/// One fuzzed extra rule over the review schema: a comparison chain whose
/// interval is sometimes empty (a dead rule the pruner skips), sometimes
/// not. Either way, pruning must be inert.
fn extra_rule(lo: f64, hi: f64, on_blind: bool) -> String {
    if on_blind {
        format!(
            "Quality[S] <= Prestige[A] WHERE Author(A, S), Submitted(S, C), \
             Blind[C] > {lo:.3}, Blind[C] < {hi:.3}\n"
        )
    } else {
        format!(
            "Quality[S] <= Prestige[A] WHERE Author(A, S), \
             Score[S] > {lo:.3}, Score[S] < {hi:.3}\n"
        )
    }
}

proptest! {
    /// Fuzzed programs over the review schema (random comparison chains,
    /// some provably dead, some live): the analysis never panics and
    /// pruning never changes a single answer bit. Case count scales with
    /// `PROPTEST_CASES`.
    #[test]
    fn pruning_is_inert_on_fuzzed_programs(
        chains in proptest::collection::vec(
            (-2.0f64..2.0, -2.0f64..2.0, any::<bool>()),
            0..3,
        ),
    ) {
        let _guard = lock();
        let _restore = Restore;
        let mut rules = REVIEW_RULES.to_string();
        for (lo, hi, on_blind) in &chains {
            rules.push_str(&extra_rule(*lo, *hi, *on_blind));
        }
        let queries: Vec<String> = REVIEW_QUERIES.iter().map(|q| q.to_string()).collect();
        assert_pruning_inert(&Instance::review_example(), &rules, &queries);
    }
}
