//! The history-recording consistency harness for the concurrent snapshot
//! query service — the headline test of the epoch-snapshot design.
//!
//! A fuzz driver runs a writer committing randomized mutation batches
//! while reader threads answer causal queries concurrently, every event
//! (epoch installs with their batches and fingerprints; per-thread query
//! observations with bit-exact answer digests) landing in a shared
//! [`carl::HistoryLog`]. Afterwards [`carl::check_history`] re-validates
//! the whole run *differentially*: it replays the batches from the base
//! instance, re-derives each epoch's fingerprint, cold re-grounds every
//! observed `(epoch, query)` pair on a fresh engine and demands
//! bit-identical digests, and checks per-thread epoch monotonicity.
//!
//! The harness is proven non-vacuous by seeding deliberate violations
//! into copies of the recorded history — a torn (half-applied) install, a
//! query relabelled to the wrong epoch, a non-monotonic reader, and a
//! corrupted install fingerprint — and asserting the checker flags every
//! one of them.

use carl::{check_history, HistoryEvent, HistoryLog, SnapshotEngine, Violation};
use carl_datagen::{generate_synthetic_review, SyntheticReviewConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reldb::{Instance, Mutation, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const EPOCHS: u32 = 4;
/// Minimum observations per reader (readers keep going while the writer
/// is active, so the real count is usually higher).
const MIN_READS: usize = 6;

/// Number of concurrent reader threads; CI's matrix raises/lowers this
/// via `SNAPSHOT_READERS` to cross it with `RAYON_NUM_THREADS`.
fn readers() -> usize {
    std::env::var("SNAPSHOT_READERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

fn queries() -> Vec<String> {
    vec![
        "Score[P] <= Prestige[A]?".to_string(),
        "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = false".to_string(),
        "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = true".to_string(),
    ]
}

/// A mutation batch that visibly moves the answers: three papers get new
/// scores far outside the generated range, and one venue flips blindness.
fn batch(rng: &mut SmallRng, papers: usize, venues: usize, epoch: u32) -> Vec<Mutation> {
    let mut mutations = Vec::new();
    for _ in 0..3 {
        let p = rng.gen_range(0..papers);
        mutations.push(Mutation::SetAttribute {
            attr: "Score".into(),
            key: vec![Value::from(format!("p{p}"))],
            value: Value::Float(10.0 + f64::from(epoch)),
        });
    }
    let v = rng.gen_range(0..venues);
    mutations.push(Mutation::SetAttribute {
        attr: "DoubleBlind".into(),
        key: vec![Value::from(format!("v{v}"))],
        value: Value::Bool(epoch.is_multiple_of(2)),
    });
    mutations
}

/// Run the fuzz driver once, returning the base instance, the service
/// (for its program) and the recorded history.
fn record_history(seed: u64) -> (Instance, Arc<SnapshotEngine>, Vec<HistoryEvent>) {
    let config = SyntheticReviewConfig {
        authors: 120,
        institutions: 10,
        papers: 400,
        venues: 6,
        ..SyntheticReviewConfig::small(seed)
    };
    let ds = generate_synthetic_review(&config);
    let base = ds.instance.clone();
    let service = Arc::new(SnapshotEngine::new(ds.instance, &ds.rules).expect("model binds"));
    let log = Arc::new(HistoryLog::new());
    let done = Arc::new(AtomicBool::new(false));
    let queries = queries();

    let n_readers = readers();
    let mut reader_threads = Vec::new();
    for thread_id in 0..n_readers {
        let service = Arc::clone(&service);
        let log = Arc::clone(&log);
        let done = Arc::clone(&done);
        let queries = queries.clone();
        reader_threads.push(thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(seed ^ (thread_id as u64 + 1));
            let mut count = 0usize;
            while !done.load(Ordering::Relaxed) || count < MIN_READS {
                let query = &queries[rng.gen_range(0..queries.len())];
                let (epoch, result) = service.answer_str(query);
                log.record_query(thread_id, epoch, query, &result);
                count += 1;
            }
        }));
    }

    // The writer runs on the test thread: commit, record the install, and
    // record one observation of every query per epoch (thread id
    // `n_readers`), guaranteeing the checker full (epoch, query) coverage
    // even if the racing readers cluster on few epochs.
    let mut rng = SmallRng::seed_from_u64(seed);
    let observe = |log: &HistoryLog| {
        for query in &queries {
            let (epoch, result) = service.answer_str(query);
            log.record_query(n_readers, epoch, query, &result);
        }
    };
    observe(&log);
    let (papers, venues) = (400, 6);
    for epoch in 0..EPOCHS {
        let mutations = batch(&mut rng, papers, venues, epoch);
        let snap = service.commit(&mutations).expect("batch is valid");
        log.record_install(&snap, &mutations);
        observe(&log);
        thread::sleep(Duration::from_millis(5));
    }
    done.store(true, Ordering::Relaxed);
    for reader in reader_threads {
        reader.join().expect("reader must not panic");
    }

    let events = log.events();
    (base, service, events)
}

#[test]
fn fuzzed_histories_are_consistent_and_seeded_violations_are_caught() {
    let (base, service, events) = record_history(0xC0FFEE);
    let installs = events
        .iter()
        .filter(|e| matches!(e, HistoryEvent::Install { .. }))
        .count();
    let observations = events
        .iter()
        .filter(|e| matches!(e, HistoryEvent::Query { .. }))
        .count();
    assert_eq!(installs, EPOCHS as usize);
    assert!(
        observations >= (EPOCHS as usize + 1) * 3 + readers() * MIN_READS,
        "too few observations recorded: {observations}"
    );

    // 1. The real history must check clean: every concurrent answer was
    //    computed on a legal snapshot, bit-identical to a cold re-ground.
    let violations = check_history(&base, service.program(), &events).expect("checker runs");
    assert_eq!(violations, vec![], "live service produced violations");

    // 2. Torn snapshot: drop half of an install's batch. The replayed
    //    fingerprint must expose the lie.
    let mut torn = events.clone();
    let target = torn
        .iter_mut()
        .find_map(|e| match e {
            HistoryEvent::Install {
                epoch, mutations, ..
            } if mutations.len() >= 2 => {
                mutations.truncate(1);
                Some(*epoch)
            }
            _ => None,
        })
        .expect("batches have several mutations");
    let violations = check_history(&base, service.program(), &torn).expect("checker runs");
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::FingerprintMismatch { epoch, .. } if *epoch == target)),
        "torn install not flagged: {violations:?}"
    );

    // 3. Wrong-epoch label: relabel a writer observation of epoch 0 as the
    //    final epoch. The digest cannot match the final epoch's data.
    let final_epoch = u64::from(EPOCHS);
    let (q0, d0) = events
        .iter()
        .find_map(|e| match e {
            HistoryEvent::Query {
                epoch: 0,
                query,
                digest,
                ..
            } => Some((query.clone(), digest.clone())),
            _ => None,
        })
        .expect("epoch 0 was observed");
    let d_final = events
        .iter()
        .find_map(|e| match e {
            HistoryEvent::Query {
                epoch,
                query,
                digest,
                ..
            } if *epoch == final_epoch && *query == q0 => Some(digest.clone()),
            _ => None,
        })
        .expect("final epoch was observed for the same query");
    assert_ne!(d0, d_final, "mutations must change this query's answer");
    let mut relabelled = events.clone();
    relabelled.push(HistoryEvent::Query {
        thread: 50,
        epoch: final_epoch,
        query: q0,
        digest: d0,
    });
    let violations = check_history(&base, service.program(), &relabelled).expect("checker runs");
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::AnswerMismatch { thread: 50, .. })),
        "wrong-epoch observation not flagged: {violations:?}"
    );

    // 4. Non-monotonic reader: a thread that sees the final epoch and then
    //    epoch 0 again (both with *correct* digests, isolating the order
    //    check) observed an illegal snapshot sequence.
    let mut backwards = events.clone();
    let grab = |epoch: u64| {
        events
            .iter()
            .find_map(|e| match e {
                HistoryEvent::Query {
                    epoch: ep,
                    query,
                    digest,
                    ..
                } if *ep == epoch => Some((query.clone(), digest.clone())),
                _ => None,
            })
            .expect("epoch observed")
    };
    let (q_new, d_new) = grab(final_epoch);
    let (q_old, d_old) = grab(0);
    backwards.push(HistoryEvent::Query {
        thread: 60,
        epoch: final_epoch,
        query: q_new,
        digest: d_new,
    });
    backwards.push(HistoryEvent::Query {
        thread: 60,
        epoch: 0,
        query: q_old,
        digest: d_old,
    });
    let violations = check_history(&base, service.program(), &backwards).expect("checker runs");
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::EpochWentBackwards {
                thread: 60,
                to: 0,
                ..
            }
        )),
        "non-monotonic reader not flagged: {violations:?}"
    );

    // 5. Corrupted install fingerprint: flip one bit of what the writer
    //    recorded.
    let mut corrupted = events.clone();
    for event in &mut corrupted {
        if let HistoryEvent::Install {
            epoch, fingerprint, ..
        } = event
        {
            if u64::from(EPOCHS) == *epoch {
                *fingerprint ^= 1 << 17;
            }
        }
    }
    let violations = check_history(&base, service.program(), &corrupted).expect("checker runs");
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::FingerprintMismatch { .. })),
        "corrupted fingerprint not flagged: {violations:?}"
    );
}

/// Deterministic replay: running the whole fuzz driver twice from the same
/// seed must produce epochs with identical fingerprints (answers may be
/// observed at different moments, but the epoch chain itself is a pure
/// function of the seed).
#[test]
fn epoch_chain_is_deterministic_across_runs() {
    let fingerprints = |events: &[HistoryEvent]| {
        events
            .iter()
            .filter_map(|e| match e {
                HistoryEvent::Install {
                    epoch, fingerprint, ..
                } => Some((*epoch, *fingerprint)),
                _ => None,
            })
            .collect::<Vec<_>>()
    };
    let (_, _, a) = record_history(42);
    let (_, _, b) = record_history(42);
    assert_eq!(fingerprints(&a), fingerprints(&b));
}
