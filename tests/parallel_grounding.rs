//! Determinism of parallel grounding.
//!
//! Grounding evaluates every rule condition concurrently and (inside the
//! tuple executor) splits large row batches across worker threads; the
//! merge into the grounded model is sequential in rule order with
//! order-preserving chunk concatenation. The result must therefore be
//! **bit-identical** under any `RAYON_NUM_THREADS` — node insertion order,
//! edge lists, and every derived f64, bit for bit. This test pins that
//! contract at a scale large enough to actually cross the executor's
//! parallel row threshold.
//!
//! Thread counts are varied through [`rayon::set_num_threads`] (the
//! environment variable is read once per process and mutating it would
//! race tests running concurrently in the same binary), and every flip is
//! restored before the assertion so other tests see the default.

use carl::{ground_with_bindings, CarlEngine, GroundedModel};
use carl_datagen::{generate_synthetic_review, SyntheticReviewConfig};
use reldb::IndexCache;

/// A canonical, construction-order-sensitive rendering of a grounded model:
/// nodes in id order, edges as (parent, child) pairs in adjacency order,
/// derived values in sorted order with exact bit patterns.
#[allow(clippy::type_complexity)]
fn canonical(g: &GroundedModel) -> (Vec<String>, Vec<(String, String)>, Vec<(String, u64)>) {
    let nodes: Vec<String> = (0..g.graph.node_count())
        .map(|id| g.graph.node(id).to_string())
        .collect();
    let mut edges = Vec::new();
    for child in 0..g.graph.node_count() {
        for &parent in g.graph.parents_of(child) {
            edges.push((nodes[parent].clone(), nodes[child].clone()));
        }
    }
    let derived: Vec<(String, u64)> = g
        .derived
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_bits()))
        .collect();
    (nodes, edges, derived)
}

#[test]
fn grounding_is_bit_identical_across_thread_counts() {
    let config = SyntheticReviewConfig {
        authors: 400,
        institutions: 20,
        papers: 2_000,
        venues: 10,
        ..SyntheticReviewConfig::small(7)
    };
    let ds = generate_synthetic_review(&config);
    let engine = CarlEngine::new(ds.instance, &ds.rules).expect("model binds to schema");

    let ground_at = |threads: usize| {
        rayon::set_num_threads(threads);
        let grounded = engine.ground_model().expect("grounding succeeds");
        rayon::set_num_threads(0);
        grounded
    };

    let one = ground_at(1);
    let four = ground_at(4);
    assert!(one.graph.node_count() > 0 && one.graph.edge_count() > 0);
    assert_eq!(
        canonical(&one),
        canonical(&four),
        "grounding must not depend on RAYON_NUM_THREADS"
    );

    // And the parallel tuple grounding agrees with the preserved
    // (sequential) bindings executor on graph content and derived values.
    let cache = IndexCache::for_instance(engine.instance());
    let reference =
        ground_with_bindings(engine.model(), engine.instance(), &cache).expect("grounds");
    assert_eq!(one.graph.node_count(), reference.graph.node_count());
    assert_eq!(one.graph.edge_count(), reference.graph.edge_count());
    let (_, _, fast_derived) = canonical(&one);
    let (_, _, slow_derived) = canonical(&reference);
    assert_eq!(fast_derived, slow_derived, "derived values bit-identical");
}
