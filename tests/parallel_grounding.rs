//! Determinism of parallel grounding.
//!
//! Grounding evaluates every rule condition concurrently and (inside the
//! tuple executor) splits large row batches across worker threads; the
//! merge into the grounded model is sequential in rule order with
//! order-preserving chunk concatenation. The result must therefore be
//! **bit-identical** under any `RAYON_NUM_THREADS` — node insertion order,
//! edge lists, and every derived f64, bit for bit. This test pins that
//! contract at a scale large enough to actually cross the executor's
//! parallel row threshold.
//!
//! Thread counts and morsel sizes are varied through
//! [`rayon::set_num_threads`] / [`rayon::set_morsel_size`] (the
//! environment variables are read once per process and mutating them would
//! race tests running concurrently in the same binary), and every flip is
//! restored before the assertion so other tests see the default. Tests in
//! this binary that flip knobs or read [`rayon::scheduler_stats`] hold the
//! [`KNOBS`] lock so they serialise against each other.

use carl::{digest_answer, ground_with_bindings, CarlEngine, GroundedModel};
use carl_datagen::{generate_synthetic_review, SyntheticReviewConfig};
use reldb::{IndexCache, UnitKey};
use std::sync::{Mutex, MutexGuard};

/// Serialises knob-mutating tests; the scheduler knobs and statistics are
/// process-global.
static KNOBS: Mutex<()> = Mutex::new(());

fn hold_knobs() -> MutexGuard<'static, ()> {
    KNOBS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A canonical, construction-order-sensitive rendering of a grounded model:
/// nodes in id order, edges as (parent, child) pairs in adjacency order,
/// derived values in sorted order with exact bit patterns.
#[allow(clippy::type_complexity)]
fn canonical(g: &GroundedModel) -> (Vec<String>, Vec<(String, String)>, Vec<(String, u64)>) {
    let nodes: Vec<String> = (0..g.graph.node_count())
        .map(|id| g.graph.node(id).to_string())
        .collect();
    let mut edges = Vec::new();
    for child in 0..g.graph.node_count() {
        for &parent in g.graph.parents_of(child) {
            edges.push((nodes[parent].clone(), nodes[child].clone()));
        }
    }
    let derived: Vec<(String, u64)> = g
        .derived
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_bits()))
        .collect();
    (nodes, edges, derived)
}

#[test]
fn grounding_is_bit_identical_across_thread_counts() {
    let _k = hold_knobs();
    let config = SyntheticReviewConfig {
        authors: 400,
        institutions: 20,
        papers: 2_000,
        venues: 10,
        ..SyntheticReviewConfig::small(7)
    };
    let ds = generate_synthetic_review(&config);
    let engine = CarlEngine::new(ds.instance, &ds.rules).expect("model binds to schema");

    let ground_at = |threads: usize| {
        rayon::set_num_threads(threads);
        let grounded = engine.ground_model().expect("grounding succeeds");
        rayon::set_num_threads(0);
        grounded
    };

    let one = ground_at(1);
    let four = ground_at(4);
    assert!(one.graph.node_count() > 0 && one.graph.edge_count() > 0);
    assert_eq!(
        canonical(&one),
        canonical(&four),
        "grounding must not depend on RAYON_NUM_THREADS"
    );

    // And the parallel tuple grounding agrees with the preserved
    // (sequential) bindings executor on graph content and derived values.
    let cache = IndexCache::for_instance(engine.instance());
    let reference =
        ground_with_bindings(engine.model(), engine.instance(), &cache).expect("grounds");
    assert_eq!(one.graph.node_count(), reference.graph.node_count());
    assert_eq!(one.graph.edge_count(), reference.graph.edge_count());
    let (_, _, fast_derived) = canonical(&one);
    let (_, _, slow_derived) = canonical(&reference);
    assert_eq!(fast_derived, slow_derived, "derived values bit-identical");
}

/// The full thread × morsel matrix: grounding, prepared unit-table bits,
/// peer maps and answer digests must be bit-identical in every cell of
/// `RAYON_NUM_THREADS` ∈ {1, 2, 4, 8} × morsel size ∈ {1, 7, 1024, huge}.
/// The morsel size only repartitions work between workers; the per-worker
/// order buffers reassemble results in submission order, so no knob value
/// may leak into any output bit.
#[test]
fn grounding_matrix_is_bit_identical_across_threads_and_morsels() {
    let _k = hold_knobs();
    let ds = generate_synthetic_review(&SyntheticReviewConfig {
        authors: 120,
        institutions: 10,
        papers: 800,
        venues: 8,
        mean_collaborators: 6.0,
        ..SyntheticReviewConfig::small(7)
    });
    let query = "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = false";

    // One matrix cell: ground the model cold, prepare the query (streamed
    // grounding + unit table + peers) and digest the full answer, all under
    // the cell's scheduler knobs. A fresh engine per cell keeps its
    // grounding caches from short-circuiting later cells.
    #[allow(clippy::type_complexity)]
    let cell = |threads: usize,
                morsel: usize|
     -> (
        (Vec<String>, Vec<(String, String)>, Vec<(String, u64)>),
        Vec<UnitKey>,
        Vec<(String, Vec<u64>)>,
        Vec<(UnitKey, Vec<UnitKey>)>,
        String,
    ) {
        rayon::set_num_threads(threads);
        rayon::set_morsel_size(morsel);
        let engine = CarlEngine::new(ds.instance.clone(), &ds.rules).expect("model binds");
        let grounded = engine.ground_model().expect("grounds");
        let prepared = engine.prepare_str(query).expect("prepares");
        let digest = digest_answer(&engine.answer_str(query));
        rayon::set_num_threads(0);
        rayon::set_morsel_size(0);

        let ut = &prepared.unit_table;
        let bits: Vec<(String, Vec<u64>)> = ut
            .column_names()
            .into_iter()
            .map(|name| {
                let col = ut.column(name).expect("column exists");
                (name.to_string(), col.iter().map(|v| v.to_bits()).collect())
            })
            .collect();
        let mut peers: Vec<(UnitKey, Vec<UnitKey>)> = prepared.peers.into_iter().collect();
        peers.sort();
        (canonical(&grounded), ut.units.clone(), bits, peers, digest)
    };

    let baseline = cell(1, rayon::DEFAULT_MORSEL_SIZE);
    assert!(
        !baseline.0 .0.is_empty(),
        "baseline grounding is non-trivial"
    );
    for threads in [1usize, 2, 4, 8] {
        for morsel in [1usize, 7, 1024, usize::MAX / 4] {
            let got = cell(threads, morsel);
            assert!(
                got == baseline,
                "cell (threads {threads}, morsel {morsel}) diverged from the \
                 single-thread default-morsel baseline"
            );
        }
    }
}

/// A deliberately skewed workload — the collaboration-join rule carries
/// ~90% of all grounded rows — still grounds bit-identically, and the
/// work-stealing scheduler keeps the morsel counts balanced: at 4
/// configured threads no worker executes more than twice the mean.
#[test]
fn skewed_workload_is_balanced_and_bit_identical() {
    let _k = hold_knobs();
    // 300 authors × ~20 collaborators each over 6,000 papers: the rule
    // `Score[P] <= Prestige[B] WHERE Writes(A, P), Collab(A, B)` grounds
    // roughly 20 rows per paper (~120k) against ~18k for the other four
    // rules combined — one rule is ~87% of the grounded row volume, and
    // its join step is the only one whose input crosses the executor's
    // parallel row threshold.
    let ds = generate_synthetic_review(&SyntheticReviewConfig {
        authors: 300,
        institutions: 10,
        papers: 6_000,
        venues: 8,
        mean_collaborators: 20.0,
        ..SyntheticReviewConfig::small(13)
    });
    let engine = CarlEngine::new(ds.instance, &ds.rules).expect("model binds");

    let baseline = {
        rayon::set_num_threads(1);
        let grounded = engine.ground_model().expect("grounds");
        rayon::set_num_threads(0);
        canonical(&grounded)
    };

    // Small morsels force many stealable units out of the one dominant
    // rule, so a chunk-per-worker scheduler would show up here as one
    // worker owning nearly all morsels.
    rayon::set_num_threads(4);
    rayon::set_morsel_size(1);
    rayon::reset_scheduler_stats();
    let skewed = engine.ground_model().expect("grounds");
    let stats = rayon::scheduler_stats();
    rayon::set_num_threads(0);
    rayon::set_morsel_size(0);

    assert_eq!(
        canonical(&skewed),
        baseline,
        "skewed grounding must not depend on threads or morsel size"
    );
    assert!(
        stats.parallel_runs > 0,
        "the skewed workload never crossed the parallel threshold: {stats:?}"
    );
    assert!(
        stats.total_morsels() >= 12,
        "too few morsels to measure balance: {stats:?}"
    );
    let mean = stats.mean_worker_morsels();
    let max = stats.max_worker_morsels() as f64;
    assert!(
        max <= 2.0 * mean,
        "worker morsel counts are skewed: max {max} > 2 × mean {mean:.2} ({stats:?})"
    );
}
