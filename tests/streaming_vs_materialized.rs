//! Differential test harness: the streamed grounding→unit-table pipeline
//! versus the preserved PR 4 materialised pipeline.
//!
//! The streaming engine (default, [`carl::GroundingMode::Streaming`])
//! pipes each condition's register-tuple chunks straight off the query
//! executor into the grounding merge, streams query-synthesised aggregates
//! as extensions over a shared base grounding, and reads derived values
//! out of dense signature-indexed column sinks. The materialised engine
//! ([`carl::GroundingMode::Tuples`]) is the PR 4 path kept verbatim: every
//! condition materialised, a sorted-map `GroundedModel`, full re-grounding
//! per cold query. This harness proves the two produce **bit-identical**
//! results — same unit tables column by column, same peer maps, same
//! ATE / AIE / ARE / AOE, same error dispositions — on every dataset the
//! columnar-vs-rowwise suite covers, and that the streamed results do not
//! depend on the worker-thread count.

use carl::{CarlEngine, EstimatorKind, GroundingMode, QueryAnswer};
use carl_datagen::{
    generate_mimic, generate_nis, generate_reviewdata, generate_synthetic_review, MimicConfig,
    NisConfig, ReviewConfig, SyntheticReviewConfig,
};
use reldb::Instance;

/// Assert two floats are bit-identical (`NaN`s of the same bit pattern
/// included).
#[track_caller]
fn assert_bits(label: &str, a: f64, b: f64) {
    assert!(
        a.to_bits() == b.to_bits(),
        "{label}: streamed {a:?} ({:#018x}) != materialised {b:?} ({:#018x})",
        a.to_bits(),
        b.to_bits()
    );
}

/// A streamed (default) and a materialised (PR 4) engine over one dataset.
fn engine_pair(instance: &Instance, rules: &str) -> (CarlEngine, CarlEngine) {
    let streamed = CarlEngine::new(instance.clone(), rules).expect("model binds");
    let mut materialised = streamed.clone();
    materialised.set_grounding_mode(GroundingMode::Tuples);
    (streamed, materialised)
}

/// Prepare `query` through both pipelines and assert bit-identical unit
/// tables, peer maps and adjustment column sets.
fn assert_prepared_identical(streamed: &CarlEngine, materialised: &CarlEngine, query: &str) {
    let s = streamed.prepare_str(query).expect("streamed prepare");
    let m = materialised
        .prepare_str(query)
        .expect("materialised prepare");
    assert_eq!(s.unit_table.len(), m.unit_table.len(), "{query}: rows");
    assert_eq!(s.unit_table.units, m.unit_table.units, "{query}: units");
    assert_eq!(
        s.unit_table.peer_counts, m.unit_table.peer_counts,
        "{query}: peer counts"
    );
    assert_eq!(
        s.unit_table.covariate_cols, m.unit_table.covariate_cols,
        "{query}: covariate columns"
    );
    for name in s.unit_table.column_names() {
        let a = s.unit_table.column(name).expect("streamed column");
        let b = m.unit_table.column(name).expect("materialised column");
        assert_eq!(a.len(), b.len(), "{query}: column {name}");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_bits(&format!("{query}: column {name} row {i}"), *x, *y);
        }
    }
    // The peer map drives AIE/ARE/AOE and the peer-treatment embedding:
    // the streamed (virtual response vertices) and materialised (graph
    // walk) computations must agree exactly.
    assert_eq!(s.peers, m.peers, "{query}: peer maps");
    assert_eq!(s.response_attr, m.response_attr, "{query}: response attr");
}

/// Answer `query` through both pipelines and assert bit-identical answers
/// (or identical error dispositions).
fn assert_answers_identical(streamed: &CarlEngine, materialised: &CarlEngine, query: &str) {
    let s = streamed.answer_str(query);
    let m = materialised.answer_str(query);
    match (s, m) {
        (Ok(QueryAnswer::Ate(s)), Ok(QueryAnswer::Ate(m))) => {
            assert_bits(&format!("{query}: ate"), s.ate, m.ate);
            assert_bits(
                &format!("{query}: naive"),
                s.naive_difference,
                m.naive_difference,
            );
            assert_bits(&format!("{query}: treated"), s.treated_mean, m.treated_mean);
            assert_bits(&format!("{query}: control"), s.control_mean, m.control_mean);
            assert_eq!(s.n_units, m.n_units, "{query}: n_units");
        }
        (Ok(QueryAnswer::PeerEffects(s)), Ok(QueryAnswer::PeerEffects(m))) => {
            assert_bits(&format!("{query}: aie"), s.aie, m.aie);
            assert_bits(&format!("{query}: are"), s.are, m.are);
            assert_bits(&format!("{query}: aoe"), s.aoe, m.aoe);
            assert_eq!(s.n_units_with_peers, m.n_units_with_peers, "{query}");
        }
        (Err(s), Err(m)) => {
            assert_eq!(s.to_string(), m.to_string(), "{query}: errors diverged");
        }
        (s, m) => panic!(
            "{query}: disposition diverged (streamed ok: {}, materialised ok: {})",
            s.is_ok(),
            m.is_ok()
        ),
    }
}

/// The full streamed grounding must carry exactly the materialised model's
/// derived values (checked through the public value lookup, bit for bit).
fn assert_grounding_identical(streamed: &CarlEngine, materialised: &CarlEngine) {
    let full = materialised.ground_model().expect("materialised grounding");
    let stream = streamed
        .ground_model_streamed()
        .expect("streamed grounding");
    assert_eq!(stream.graph.node_count(), full.graph.node_count());
    assert_eq!(stream.graph.edge_count(), full.graph.edge_count());
    for id in 0..full.graph.node_count() {
        let node = full.graph.node(id);
        assert_eq!(
            stream.graph.node_id(node),
            Some(id),
            "node {node} diverges (ids or insertion order)"
        );
    }
    for (node, &value) in &full.derived {
        let streamed_value = stream
            .value_of(streamed.instance(), node)
            .unwrap_or_else(|| panic!("derived {node} missing from the streamed sinks"));
        assert_bits(&format!("derived {node}"), streamed_value, value);
    }
}

/// The paper's running example (Figure 2 / Table 1).
#[test]
fn review_example_is_identical() {
    const RULES: &str = r#"
        Prestige[A]  <= Qualification[A]              WHERE Person(A)
        Quality[S]   <= Qualification[A], Prestige[A] WHERE Author(A, S)
        Score[S]     <= Prestige[A]                   WHERE Author(A, S)
        Score[S]     <= Quality[S]                    WHERE Submission(S)
        AVG_Score[A] <= Score[S]                      WHERE Author(A, S)
    "#;
    let instance = Instance::review_example();
    let (streamed, materialised) = engine_pair(&instance, RULES);
    assert_grounding_identical(&streamed, &materialised);
    for query in [
        "AVG_Score[A] <= Prestige[A]?",
        "Score[S] <= Prestige[A]?",
        "AVG_Score[A] <= Prestige[A]? WHERE Qualification[A] >= 10",
        "Score[S] <= Prestige[A]? WHERE Submitted(S, C), Blind[C] = true",
    ] {
        assert_prepared_identical(&streamed, &materialised, query);
        assert_answers_identical(&streamed, &materialised, query);
    }
}

/// SYNTHETIC REVIEWDATA: ATE and every peer regime, plus estimator sweep.
#[test]
fn synthetic_review_is_identical_across_regimes_and_estimators() {
    let ds = generate_synthetic_review(&SyntheticReviewConfig {
        authors: 250,
        institutions: 20,
        papers: 1_200,
        venues: 10,
        ..SyntheticReviewConfig::small(42)
    });
    let (streamed, materialised) = engine_pair(&ds.instance, &ds.rules);
    assert_grounding_identical(&streamed, &materialised);
    let single = "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = false";
    let double = "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = true";
    assert_prepared_identical(&streamed, &materialised, single);
    assert_prepared_identical(&streamed, &materialised, double);
    assert_answers_identical(&streamed, &materialised, single);
    assert_answers_identical(&streamed, &materialised, double);
    for regime in ["ALL", "NONE", "MORE THAN 33%", "AT LEAST 2", "EXACTLY 1"] {
        assert_answers_identical(
            &streamed,
            &materialised,
            &format!("{single} WHEN {regime} PEERS TREATED"),
        );
    }
    for estimator in [
        EstimatorKind::Regression,
        EstimatorKind::PropensityMatching,
        EstimatorKind::Subclassification,
        EstimatorKind::Ipw,
        EstimatorKind::Naive,
    ] {
        let (mut streamed, mut materialised) = engine_pair(&ds.instance, &ds.rules);
        streamed.set_estimator(estimator);
        materialised.set_estimator(estimator);
        assert_answers_identical(&streamed, &materialised, single);
    }
}

/// MIMIC-like healthcare queries (SUTVA special case included).
#[test]
fn mimic_queries_are_identical() {
    let ds = generate_mimic(&MimicConfig {
        patients: 800,
        caregivers: 40,
        drugs: 20,
        ..MimicConfig::small(99)
    });
    let (streamed, materialised) = engine_pair(&ds.instance, &ds.rules);
    for query in &ds.queries {
        assert_prepared_identical(&streamed, &materialised, query);
        assert_answers_identical(&streamed, &materialised, query);
    }
}

/// NIS-like hospital query (Table 3's query 35).
#[test]
fn nis_query_is_identical() {
    let ds = generate_nis(&NisConfig {
        admissions: 1_000,
        hospitals: 40,
        ..NisConfig::small(12)
    });
    let (streamed, materialised) = engine_pair(&ds.instance, &ds.rules);
    for query in &ds.queries {
        assert_prepared_identical(&streamed, &materialised, query);
        assert_answers_identical(&streamed, &materialised, query);
    }
}

/// REVIEWDATA blinding-regime queries plus the peer decomposition.
#[test]
fn reviewdata_queries_are_identical() {
    let ds = generate_reviewdata(&ReviewConfig::small(5));
    let (streamed, materialised) = engine_pair(&ds.instance, &ds.rules);
    for blind in ["false", "true"] {
        let query = format!("Score[S] <= Prestige[A]? WHERE Submitted(S, C), Blind[C] = {blind}");
        assert_prepared_identical(&streamed, &materialised, &query);
        assert_answers_identical(&streamed, &materialised, &query);
    }
    assert_answers_identical(
        &streamed,
        &materialised,
        "Score[S] <= Prestige[A]? WHERE Submitted(S, C), Blind[C] = false WHEN ALL PEERS TREATED",
    );
}

/// Regression: sources of the query-synthesised aggregate that are
/// themselves base-model *aggregate* heads must resolve to base-graph
/// nodes. The extension's read-only node lookup used to miss them
/// (aggregate heads were added to the graph without entering the node
/// memo), silently emptying the peer map — unit tables looked right while
/// AIE/ARE/AOE lost all interference.
#[test]
fn extension_sources_that_are_base_aggregate_heads_keep_peer_reachability() {
    const RULES: &str = r#"
        Score[S] <= Blind[C] WHERE Submitted(S, C)
        AVG_Score[A] <= Score[S] WHERE Author(A, S)
    "#;
    let instance = Instance::review_example();
    let (streamed, materialised) = engine_pair(&instance, RULES);
    let query = "AVG_Score[A] <= Blind[C]?";
    let m = materialised
        .prepare_str(query)
        .expect("materialised prepare");
    assert!(
        m.peers.values().any(|p| !p.is_empty()),
        "the scenario must induce interference for the regression to bite"
    );
    assert_prepared_identical(&streamed, &materialised, query);
    assert_answers_identical(&streamed, &materialised, query);
}

/// Streamed results are bit-identical at any worker-thread count and any
/// morsel size (the acceptance bar: `RAYON_NUM_THREADS` ∈ {1, 2, 4, 8} ×
/// morsel ∈ {1, 7, 1024, huge}), both for the full streamed grounding and
/// for the end-to-end prepared unit table. Knobs are varied via
/// `rayon::set_num_threads` / `rayon::set_morsel_size` (the env vars are
/// read once per process and mutating them would race concurrent tests).
#[test]
fn streamed_pipeline_is_bit_identical_across_thread_counts() {
    let ds = generate_synthetic_review(&SyntheticReviewConfig {
        authors: 400,
        institutions: 20,
        papers: 2_000,
        venues: 10,
        ..SyntheticReviewConfig::small(7)
    });
    let query = "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = false";
    let engine = CarlEngine::new(ds.instance, &ds.rules).expect("model binds");

    let table_bits = |threads: usize, morsel: usize| {
        rayon::set_num_threads(threads);
        rayon::set_morsel_size(morsel);
        let query = carl::carl_lang::parse_query(query).expect("query parses");
        let prepared = engine.prepare_cold(&query).expect("prepares");
        rayon::set_num_threads(0);
        rayon::set_morsel_size(0);
        let ut = &prepared.unit_table;
        let mut bits: Vec<(String, Vec<u64>)> = Vec::new();
        for name in ut.column_names() {
            let col = ut.column(name).expect("column");
            bits.push((name.to_string(), col.iter().map(|v| v.to_bits()).collect()));
        }
        (ut.units.clone(), bits)
    };
    let baseline = table_bits(1, rayon::DEFAULT_MORSEL_SIZE);
    // Sampled off-diagonal of the {1,2,4,8} × {1,7,1024,huge} matrix; the
    // full cross product runs on the cheaper grounding-only harness in
    // `parallel_grounding.rs`.
    for (threads, morsel) in [(2, 7), (4, 1), (8, 1024), (4, usize::MAX / 4)] {
        let cell = table_bits(threads, morsel);
        assert_eq!(
            baseline.0, cell.0,
            "unit keys depend on the knobs (threads {threads}, morsel {morsel})"
        );
        assert_eq!(
            baseline.1, cell.1,
            "unit table bits depend on the knobs (threads {threads}, morsel {morsel})"
        );
    }

    let ground_shape = |threads: usize, morsel: usize| {
        rayon::set_num_threads(threads);
        rayon::set_morsel_size(morsel);
        let grounded = engine.ground_model_streamed().expect("grounds");
        rayon::set_num_threads(0);
        rayon::set_morsel_size(0);
        let nodes: Vec<String> = (0..grounded.graph.node_count())
            .map(|id| grounded.graph.node(id).to_string())
            .collect();
        let mut edges = Vec::new();
        for child in 0..grounded.graph.node_count() {
            for &parent in grounded.graph.parents_of(child) {
                edges.push((parent, child));
            }
        }
        (nodes, edges)
    };
    let shape = ground_shape(1, rayon::DEFAULT_MORSEL_SIZE);
    for (threads, morsel) in [(4, 1), (8, 7), (2, usize::MAX / 4)] {
        assert_eq!(
            shape,
            ground_shape(threads, morsel),
            "streamed grounding depends on the knobs (threads {threads}, morsel {morsel})"
        );
    }
}
