//! Golden-snapshot coverage for `carl-check --json`: every CaRL program
//! under `examples/programs/` (including the deliberately defective lint
//! showcases in `lints/`) has a checked-in JSON diagnostics snapshot in
//! `examples/programs/snapshots/` mirroring its relative path, and the
//! machine-readable output must match it byte for byte.
//!
//! The snapshots are produced by `carl-check --json <program>`; this test
//! recomputes them through the same library surface
//! ([`carl_lang::diagnostics_to_json`] over [`carl::analyze`] against the
//! paper's review schema) so a drift in codes, severities, spans, messages
//! or JSON shape fails here *and* in the CI golden-diff leg. To refresh
//! after an intentional change:
//!
//! ```text
//! cargo run --release --bin carl-check -- --json examples/programs/X.carl \
//!   > examples/programs/snapshots/X.json
//! ```

use carl_lang::{diagnostics_to_json, parse_program};
use reldb::RelationalSchema;
use std::path::{Path, PathBuf};

fn programs_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs")
}

/// All `.carl` files under `dir`, recursively, skipping `snapshots/`.
fn collect_programs(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("examples/programs is readable") {
        let path = entry.expect("directory entry").path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "snapshots") {
                continue;
            }
            collect_programs(&path, out);
        } else if path.extension().is_some_and(|e| e == "carl") {
            out.push(path);
        }
    }
}

#[test]
fn every_example_program_matches_its_json_snapshot() {
    let root = programs_dir();
    let mut programs = Vec::new();
    collect_programs(&root, &mut programs);
    programs.sort();
    assert!(
        programs.len() >= 4,
        "expected the example corpus (incl. lints/), found {programs:?}"
    );

    let mut missing = Vec::new();
    for path in &programs {
        let rel = path.strip_prefix(&root).expect("program under root");
        let snap_path = root.join("snapshots").join(rel).with_extension("json");
        let source = std::fs::read_to_string(path).expect("program readable");
        let program = parse_program(&source)
            .unwrap_or_else(|e| panic!("{}: example programs must parse: {e}", rel.display()));
        let diagnostics = carl::analyze(&RelationalSchema::review_example(), &program);
        // `carl-check --json` prints via println!, so snapshots carry a
        // trailing newline.
        let rendered = format!("{}\n", diagnostics_to_json(&source, &diagnostics));
        match std::fs::read_to_string(&snap_path) {
            Ok(snapshot) => assert_eq!(
                rendered,
                snapshot,
                "{}: JSON diagnostics drifted from {} — refresh with \
                 `carl-check --json` if the change is intentional",
                rel.display(),
                snap_path.display(),
            ),
            Err(_) => missing.push(snap_path),
        }
    }
    assert!(
        missing.is_empty(),
        "programs without a checked-in snapshot: {missing:?}"
    );
}

/// Every snapshot corresponds to a program that still exists — stale
/// snapshots fail loudly instead of rotting.
#[test]
fn no_orphaned_snapshots() {
    let root = programs_dir();
    let snaps_root = root.join("snapshots");
    let mut snaps = Vec::new();
    collect_json(&snaps_root, &mut snaps);
    for snap in snaps {
        let rel = snap.strip_prefix(&snaps_root).expect("snapshot under root");
        let program = root.join(rel).with_extension("carl");
        assert!(
            program.is_file(),
            "snapshot {} has no matching program {}",
            snap.display(),
            program.display()
        );
    }
}

fn collect_json(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("snapshots dir is readable") {
        let path = entry.expect("directory entry").path();
        if path.is_dir() {
            collect_json(&path, out);
        } else if path.extension().is_some_and(|e| e == "json") {
            out.push(path);
        }
    }
}
