//! End-to-end checks of the static-analysis pipeline: the combined
//! (language + schema) analyzer collects *every* defect of an ill-formed
//! program in one pass, with correct line:column positions, while model
//! construction keeps failing fast with its historical typed errors.

use carl::{analyze, CarlError, RelationalCausalModel};
use carl_lang::{parse_program, render_diagnostics, LineIndex};
use proptest::prelude::*;
use reldb::RelationalSchema;

/// Three defective statements: an unsafe + unknown-attribute rule, an
/// arity-violating rule, and a self-treatment query.
const ILL_FORMED: &str = "\
Score[S] <= Fame[A] WHERE Submission(S)
Quality[X] <= Score[X, Y]
Score[S] <= Score[S]?
";

#[test]
fn one_pass_reports_every_defect_with_line_and_column() {
    let program = parse_program(ILL_FORMED).unwrap();
    let diags = analyze(&RelationalSchema::review_example(), &program);

    let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
    for expected in ["E0001", "E0102", "E0103", "E0004"] {
        assert!(codes.contains(&expected), "missing {expected} in {codes:?}");
    }
    assert!(diags.len() >= 4, "{diags:?}");

    // Every diagnostic points at the right line of the source.
    let index = LineIndex::new(ILL_FORMED);
    let line_of = |code: &str| {
        let d = diags.iter().find(|d| d.code == code).unwrap();
        index.position(d.span.start).line
    };
    assert_eq!(line_of("E0001"), 1);
    assert_eq!(line_of("E0102"), 1);
    assert_eq!(line_of("E0103"), 2);
    assert_eq!(line_of("E0004"), 3);

    // The rendered report carries rustc-style line:column headers and a
    // tally, ready for `carl-check` to print verbatim.
    let rendered = render_diagnostics(ILL_FORMED, &diags);
    assert!(rendered.contains("error[E0102]"), "{rendered}");
    assert!(rendered.contains("--> line 1, column 13"), "{rendered}");
    assert!(rendered.contains("--> line 3, column 1"), "{rendered}");
    assert!(rendered.ends_with("errors, 0 warnings\n"), "{rendered}");
}

#[test]
fn model_construction_still_fails_fast_with_the_historical_error() {
    // The schema-independent validator runs first, so the unsafe variable
    // (not the unknown attribute) is the failure the engine reports.
    let program = parse_program(ILL_FORMED).unwrap();
    let err = RelationalCausalModel::new(RelationalSchema::review_example(), program).unwrap_err();
    assert!(matches!(err, CarlError::Lang(_)), "{err}");

    // A program whose only defect is schema-level fails with the first
    // legacy typed error, exactly as before the analyzer existed.
    let program = parse_program("Score[S] <= Fame[A] WHERE Author(A, S)").unwrap();
    let err = RelationalCausalModel::new(RelationalSchema::review_example(), program).unwrap_err();
    assert!(matches!(err, CarlError::UnknownAttribute(a) if a == "Fame"));
}

#[test]
fn lint_only_findings_do_not_fail_the_engine() {
    // Blind is bool-valued: comparing it to an integer other than 0/1 is an
    // E0104 lint, but the engine still accepts the program.
    let src = r#"
        Prestige[A] <= Qualification[A] WHERE Person(A)
        Score[S]    <= Prestige[A]      WHERE Author(A, S), Submitted(S, C), Blind[C] = 3
    "#;
    let program = parse_program(src).unwrap();
    let diags = analyze(&RelationalSchema::review_example(), &program);
    assert!(diags.iter().any(|d| d.code == "E0104"), "{diags:?}");
    let program = parse_program(src).unwrap();
    assert!(RelationalCausalModel::new(RelationalSchema::review_example(), program).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random mixes of schema-level defects — undefined attributes and
    /// wrong-arity references — are all collected (never fail-fast, never
    /// panic) and every span stays inside the source.
    #[test]
    fn schema_defect_mixes_are_all_reported(
        undefined in 0usize..3,
        bad_arity in 0usize..3,
        valid in 0usize..3,
    ) {
        // At least one defect (the vendored proptest has no prop_assume).
        let undefined = if undefined + bad_arity == 0 { 1 } else { undefined };
        let mut src = String::new();
        for i in 0..valid {
            src.push_str(&format!("Score[S{i}] <= Prestige[A{i}] WHERE Author(A{i}, S{i})\n"));
        }
        for i in 0..undefined {
            src.push_str(&format!("Quality[S{i}] <= Fame{i}[A{i}] WHERE Author(A{i}, S{i})\n"));
        }
        for i in 0..bad_arity {
            src.push_str(&format!("Quality[T{i}] <= Score[T{i}, U{i}] WHERE Author(U{i}, T{i})\n"));
        }
        let program = parse_program(&src).unwrap();
        let diags = analyze(&RelationalSchema::review_example(), &program);
        let count = |code: &str| diags.iter().filter(|d| d.code == code).count();
        prop_assert_eq!(count("E0102"), undefined, "{:?}\n{}", diags, src);
        prop_assert_eq!(count("E0103"), bad_arity, "{:?}\n{}", diags, src);
        for d in &diags {
            prop_assert!(d.span.start <= d.span.end);
            prop_assert!(d.span.end <= src.len());
        }
    }
}

#[test]
fn clean_paper_program_is_diagnostic_free() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/programs/review.carl"
    ))
    .unwrap();
    let program = parse_program(&src).unwrap();
    assert!(analyze(&RelationalSchema::review_example(), &program).is_empty());
}
