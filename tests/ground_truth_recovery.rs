//! Integration test: CaRL recovers the planted ground truth on SYNTHETIC
//! REVIEWDATA (paper §6.3, Table 4 / Table 5), while the naive difference of
//! means is biased by the qualification confounder.

use carl::{CarlEngine, EmbeddingKind};
use carl_datagen::{generate_synthetic_review, SyntheticReviewConfig};

fn engine(config: &SyntheticReviewConfig) -> CarlEngine {
    let ds = generate_synthetic_review(config);
    CarlEngine::new(ds.instance, &ds.rules).expect("model binds to schema")
}

#[test]
fn ate_is_recovered_at_single_and_double_blind_venues() {
    let config = SyntheticReviewConfig::small(42);
    let engine = engine(&config);

    // Single-blind: isolated effect 1.0, relational 0.5 → ATE (all treated
    // vs none) = 1.5.
    let single = engine
        .answer_str("Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = false")
        .expect("single-blind query answers");
    let single = single.as_ate().expect("ATE query");
    assert!(
        (single.ate - 1.5).abs() < 0.25,
        "single-blind ATE {} should be near 1.5",
        single.ate
    );
    // The naive difference is inflated by the qualification confounder well
    // beyond the own-treatment effect of 1.0 plus peer spill-over.
    assert!(single.naive_difference > single.ate - 0.2);
    assert!(single.correlation > 0.2);

    // Double-blind: isolated effect 0, relational 0.5 → ATE = 0.5.
    let double = engine
        .answer_str("Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = true")
        .expect("double-blind query answers");
    let double = double.as_ate().expect("ATE query");
    assert!(
        (double.ate - 0.5).abs() < 0.25,
        "double-blind ATE {} should be near 0.5",
        double.ate
    );
    // The naive difference at double-blind venues stays clearly positive
    // (association through quality) even though the isolated effect is zero.
    assert!(double.naive_difference > 0.2);
}

#[test]
fn isolated_and_relational_effects_are_disentangled() {
    let config = SyntheticReviewConfig::small(7);
    let engine = engine(&config);

    let single = engine
        .answer_str(
            "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = false \
             WHEN ALL PEERS TREATED",
        )
        .expect("peer query answers");
    let single = single.as_peer_effects().expect("peer-effects query");
    assert!((single.aie - 1.0).abs() < 0.25, "AIE {} ≈ 1.0", single.aie);
    assert!((single.are - 0.5).abs() < 0.25, "ARE {} ≈ 0.5", single.are);
    // Proposition 4.1.
    assert!((single.aoe - (single.aie + single.are)).abs() < 1e-9);

    let double = engine
        .answer_str(
            "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = true \
             WHEN ALL PEERS TREATED",
        )
        .expect("peer query answers");
    let double = double.as_peer_effects().expect("peer-effects query");
    assert!(double.aie.abs() < 0.25, "AIE {} ≈ 0.0", double.aie);
    assert!((double.are - 0.5).abs() < 0.25, "ARE {} ≈ 0.5", double.are);
}

#[test]
fn every_embedding_recovers_the_ate() {
    let config = SyntheticReviewConfig::small(3);
    let ds = generate_synthetic_review(&config);
    for embedding in [
        EmbeddingKind::Mean,
        EmbeddingKind::Median,
        EmbeddingKind::Moments(3),
        EmbeddingKind::Padding(0), // auto-sized
    ] {
        let mut engine = CarlEngine::new(ds.instance.clone(), &ds.rules).expect("model binds");
        engine.set_embedding(embedding);
        let ans = engine
            .answer_str("Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = false")
            .expect("query answers");
        let ate = ans.as_ate().expect("ATE query").ate;
        assert!(
            (ate - 1.5).abs() < 0.35,
            "{embedding:?}: ATE {ate} should be near 1.5"
        );
    }
}

#[test]
fn variant_without_relational_effect_has_zero_are() {
    let config = SyntheticReviewConfig::small(19).without_relational_effect();
    let engine = engine(&config);
    let ans = engine
        .answer_str(
            "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = false \
             WHEN ALL PEERS TREATED",
        )
        .expect("peer query answers");
    let ans = ans.as_peer_effects().expect("peer-effects query");
    assert!(ans.are.abs() < 0.2, "ARE {} should be near 0", ans.are);
    assert!((ans.aie - 1.0).abs() < 0.25);
}
