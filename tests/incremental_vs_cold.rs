//! Differential test harness: incrementally patched epochs versus cold
//! re-grounds.
//!
//! [`carl::SnapshotEngine::commit`] in [`carl::CommitMode::Incremental`]
//! (the default) turns an attribute-only mutation batch into a typed
//! delta and *patches* the previous epoch's streamed grounding in place
//! of re-grounding the world. This harness is the differential oracle
//! for that fast path: after any fuzzed mutation sequence, every answer
//! computed on a patched epoch must be **bit-identical** (same
//! [`carl::digest_answer`] digest, same unit-table column bits, same
//! peer maps) to a cold engine built from scratch over the same
//! instance. It covers a two-level aggregate cascade (an aggregate whose
//! source is itself an aggregate head), the structural fallback, the
//! [`carl::check_history`] oracle over a fast-path run, and worker-
//! thread-count independence (`RAYON_NUM_THREADS` ∈ {1, 4}, varied via
//! `rayon::set_num_threads` like the streaming-vs-materialised suite).

use carl::{digest_answer, CarlEngine, CommitMode, HistoryLog, SnapshotEngine};
use carl_datagen::{generate_synthetic_review, SyntheticReviewConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reldb::{Instance, Mutation, Value};

/// Synthetic-review rules extended with a two-level aggregate cascade:
/// `AVG_Score` folds each author's paper scores, and `AVG_AVG_Score`
/// folds *those aggregates* back onto papers. A patched `Score` cell must
/// ripple through both levels.
const CASCADE_RULES: &str = r#"
    Prestige[A] <= Qualification[A]              WHERE Person(A)
    Quality[P]  <= Qualification[A]              WHERE Writes(A, P)
    Score[P]    <= Quality[P]                    WHERE Paper(P)
    Score[P]    <= Prestige[A]                   WHERE Writes(A, P)
    AVG_Score[A] <= Score[P]                     WHERE Writes(A, P)
    AVG_AVG_Score[P] <= AVG_Score[A]             WHERE Writes(A, P)
"#;

const QUERIES: &[&str] = &[
    "AVG_Score[A] <= Prestige[A]?",
    "AVG_AVG_Score[P] <= Prestige[A]?",
    "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = false",
    "Score[P] <= Prestige[A]? WHEN ALL PEERS TREATED",
];

fn dataset(seed: u64) -> Instance {
    generate_synthetic_review(&SyntheticReviewConfig {
        authors: 80,
        institutions: 8,
        papers: 300,
        venues: 5,
        ..SyntheticReviewConfig::small(seed)
    })
    .instance
}

/// A randomized attribute-only batch: paper scores move, author
/// qualifications move, and occasionally a score cell is cleared.
fn attribute_batch(rng: &mut SmallRng, papers: usize, authors: usize, epoch: u32) -> Vec<Mutation> {
    let mut batch = Vec::new();
    for _ in 0..4 {
        let p = rng.gen_range(0..papers);
        if rng.gen_range(0..5) == 0 {
            batch.push(Mutation::ClearAttribute {
                attr: "Score".into(),
                key: vec![Value::from(format!("p{p}"))],
            });
        } else {
            batch.push(Mutation::SetAttribute {
                attr: "Score".into(),
                key: vec![Value::from(format!("p{p}"))],
                value: Value::Float(5.0 + f64::from(epoch) + p as f64 * 0.01),
            });
        }
    }
    let a = rng.gen_range(0..authors);
    batch.push(Mutation::SetAttribute {
        attr: "Qualification".into(),
        key: vec![Value::from(format!("a{a}"))],
        value: Value::Float(f64::from(epoch) * 3.0 + 1.0),
    });
    batch
}

/// Assert the service's current (possibly patched) epoch answers every
/// query bit-identically to a cold engine built from scratch over the
/// same instance, and that the prepared unit table and peer map match
/// column-bit for column-bit on the cascade query.
fn assert_epoch_matches_cold(service: &SnapshotEngine, rules: &str) {
    let snap = service.snapshot();
    let cold = CarlEngine::new(snap.instance().clone(), rules).expect("cold engine binds");
    for query in QUERIES {
        let live = digest_answer(&snap.engine().answer_str(query));
        let cold_digest = digest_answer(&cold.answer_str(query));
        assert_eq!(
            live,
            cold_digest,
            "epoch {}: digest diverged from cold re-ground for {query}",
            snap.epoch()
        );
    }
    let query = "AVG_AVG_Score[P] <= Prestige[A]?";
    match (snap.engine().prepare_str(query), cold.prepare_str(query)) {
        (Ok(live), Ok(cold)) => {
            assert_eq!(live.unit_table.units, cold.unit_table.units, "unit keys");
            assert_eq!(live.peers, cold.peers, "peer maps");
            for name in live.unit_table.column_names() {
                let a = live.unit_table.column(name).expect("live column");
                let b = cold.unit_table.column(name).expect("cold column");
                let a: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, b, "column {name} bits diverged");
            }
        }
        (Err(live), Err(cold)) => assert_eq!(live.to_string(), cold.to_string()),
        (live, cold) => panic!(
            "prepare disposition diverged (live ok: {}, cold ok: {})",
            live.is_ok(),
            cold.is_ok()
        ),
    }
}

/// Fuzzed attribute-only mutation sequences: every epoch is patched (the
/// fast path must actually engage) and every patched epoch is
/// bit-identical to a cold rebuild — including the two-level aggregate
/// cascade.
#[test]
fn fuzzed_attribute_commits_patch_bit_identically() {
    let service = SnapshotEngine::new(dataset(11), CASCADE_RULES).expect("model binds");
    assert_eq!(service.commit_mode(), CommitMode::Incremental);

    // Warm the base grounding so epoch 1 patches instead of starting cold.
    let _ = service.answer_str(QUERIES[0]);

    let mut rng = SmallRng::seed_from_u64(0xDE17A);
    for epoch in 0..5 {
        let batch = attribute_batch(&mut rng, 300, 80, epoch);
        let snap = service.commit(&batch).expect("attribute batch applies");
        // The patched epoch arrives with its grounding already seeded —
        // queries below read the *patched* state, not a lazy cold
        // re-ground (which would make this harness vacuous).
        assert_eq!(
            snap.engine().grounding_cache_len(),
            1,
            "epoch {}: patched base grounding was not seeded",
            snap.epoch()
        );
        assert_epoch_matches_cold(&service, CASCADE_RULES);
    }
    let stats = service.commit_stats();
    assert_eq!(
        (stats.incremental, stats.cold),
        (5, 0),
        "attribute-only batches must all take the fast path"
    );
}

/// Structural mutations (new entities, new relationship edges) are not
/// patchable: the service falls back to a cold re-ground and the answers
/// stay bit-identical to a from-scratch engine.
#[test]
fn structural_commits_fall_back_to_cold_rebuilds() {
    let service = SnapshotEngine::new(dataset(23), CASCADE_RULES).expect("model binds");
    let _ = service.answer_str(QUERIES[0]);

    // Attribute commit: fast path.
    service
        .commit(&[Mutation::SetAttribute {
            attr: "Score".into(),
            key: vec![Value::from("p0")],
            value: Value::Float(42.0),
        }])
        .expect("attribute batch applies");
    assert_epoch_matches_cold(&service, CASCADE_RULES);

    // Structural commit: a brand-new author who writes an existing paper.
    service
        .commit(&[
            Mutation::InsertEntity {
                entity: "Person".into(),
                key: Value::from("a_new"),
            },
            Mutation::SetAttribute {
                attr: "Qualification".into(),
                key: vec![Value::from("a_new")],
                value: Value::Float(9.0),
            },
            Mutation::InsertRelationship {
                rel: "Writes".into(),
                tuple: vec![Value::from("a_new"), Value::from("p1")],
            },
        ])
        .expect("structural batch applies");
    assert_epoch_matches_cold(&service, CASCADE_RULES);

    // A mixed no-op retraction batch (never-present targets) emits an
    // empty delta and still patches.
    service
        .commit(&[
            Mutation::DeleteRelationship {
                rel: "Writes".into(),
                tuple: vec![Value::from("a_new"), Value::from("p2")],
            },
            Mutation::ClearAttribute {
                attr: "Score".into(),
                key: vec![Value::from("p_absent")],
            },
        ])
        .expect("no-op batch applies");
    assert_epoch_matches_cold(&service, CASCADE_RULES);

    let stats = service.commit_stats();
    assert_eq!(stats.incremental, 2, "attribute + no-op batches patch");
    assert_eq!(stats.cold, 1, "structural batch rebuilds cold");
}

/// The history-recording consistency oracle passes on a fast-path run:
/// every recorded (epoch, query) observation on patched epochs replays
/// bit-identically when `check_history` cold re-grounds the whole chain.
#[test]
fn check_history_passes_over_patched_epochs() {
    let base = dataset(37);
    let service = SnapshotEngine::new(base.clone(), CASCADE_RULES).expect("model binds");
    let log = HistoryLog::new();

    let observe = |log: &HistoryLog| {
        for query in QUERIES {
            let (epoch, result) = service.answer_str(query);
            log.record_query(0, epoch, query, &result);
        }
    };
    observe(&log);
    let mut rng = SmallRng::seed_from_u64(0x0DDE55);
    for epoch in 0..4 {
        let batch = attribute_batch(&mut rng, 300, 80, epoch);
        let snap = service.commit(&batch).expect("batch applies");
        log.record_install(&snap, &batch);
        observe(&log);
    }
    assert!(
        service.commit_stats().incremental >= 3,
        "the run must actually exercise the fast path: {:?}",
        service.commit_stats()
    );

    let violations =
        carl::check_history(&base, service.program(), &log.events()).expect("checker runs");
    assert_eq!(
        violations,
        vec![],
        "patched epochs broke the history oracle"
    );
}

/// Patched epochs are bit-identical at any worker-thread count and morsel
/// size: the same commit sequence under different scheduler knobs yields
/// the same digest for every (epoch, query) pair.
#[test]
fn patched_epochs_are_bit_identical_across_thread_counts() {
    let run = |threads: usize, morsel: usize| -> Vec<String> {
        rayon::set_num_threads(threads);
        rayon::set_morsel_size(morsel);
        let service = SnapshotEngine::new(dataset(51), CASCADE_RULES).expect("model binds");
        let _ = service.answer_str(QUERIES[0]);
        let mut rng = SmallRng::seed_from_u64(0x7EAD5);
        let mut digests = Vec::new();
        for epoch in 0..3 {
            let batch = attribute_batch(&mut rng, 300, 80, epoch);
            service.commit(&batch).expect("batch applies");
            for query in QUERIES {
                let (epoch, result) = service.answer_str(query);
                digests.push(format!("{epoch}:{query}:{}", digest_answer(&result)));
            }
        }
        assert_eq!(service.commit_stats().incremental, 3);
        rayon::set_num_threads(0);
        rayon::set_morsel_size(0);
        digests
    };
    let baseline = run(1, rayon::DEFAULT_MORSEL_SIZE);
    for (threads, morsel) in [(4, 1), (2, 7), (8, 1024)] {
        assert_eq!(
            baseline,
            run(threads, morsel),
            "patched epochs depend on the scheduler knobs \
             (threads {threads}, morsel {morsel})"
        );
    }
}
