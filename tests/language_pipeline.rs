//! Integration test: the textual CaRL pipeline — programs containing rules,
//! aggregate rules *and* queries are parsed, validated, pretty-printed,
//! re-parsed and executed against a generated database.

use carl::CarlEngine;
use carl_datagen::{generate_mimic, MimicConfig};
use carl_lang::{parse_program, pretty, validate_program};

#[test]
fn program_roundtrips_through_the_pretty_printer() {
    let source = r#"
        SelfPay[P]  <= Ethnicity[P], Sex[P], Severity[P]   WHERE Patient(P)
        Dose[D]     <= Severity[P]                          WHERE Given(D, P)
        Death[P]    <= Severity[P], SelfPay[P]              WHERE Patient(P)
        Len[P]      <= Severity[P], SelfPay[P]              WHERE Patient(P)
        AVG_Dose[P] <= Dose[D]                              WHERE Given(D, P)

        Death[P] <= SelfPay[P]?
        Len[P]   <= SelfPay[P]? WHERE Severity[P] >= 0.5
    "#;
    let program = parse_program(source).expect("parses");
    assert_eq!(program.rules.len(), 4);
    assert_eq!(program.aggregates.len(), 1);
    assert_eq!(program.queries.len(), 2);
    let order = validate_program(&program).expect("validates");
    assert!(order.contains(&"Death".to_string()));

    let printed = pretty::print_program(&program);
    let reparsed = parse_program(&printed).expect("pretty output reparses");
    assert_eq!(program, reparsed);
}

#[test]
fn queries_written_in_the_program_run_against_a_generated_database() {
    let ds = generate_mimic(&MimicConfig {
        patients: 3_000,
        ..MimicConfig::small(99)
    });
    // Append the evaluation queries to the model text and hand everything to
    // the engine at once, as an analyst would.
    let source = format!("{}\n{}\n{}\n", ds.rules, ds.queries[0], ds.queries[1]);
    let engine = CarlEngine::new(ds.instance, &source).expect("model binds");
    assert_eq!(engine.program_queries().len(), 2);

    for query in engine.program_queries().to_vec() {
        let answer = engine.answer(&query).expect("query answers");
        let ate = answer.as_ate().expect("ATE query");
        assert!(ate.n_treated > 0 && ate.n_control > 0);
        assert!(ate.ate.is_finite());
    }
}

#[test]
fn helpful_errors_for_bad_programs() {
    // Unknown attribute.
    let err = CarlEngine::new(
        reldb::Instance::review_example(),
        "Score[S] <= Charisma[A] WHERE Author(A, S)",
    )
    .unwrap_err();
    assert!(err.to_string().contains("Charisma"));

    // Recursive model.
    let err = CarlEngine::new(
        reldb::Instance::review_example(),
        "Score[S] <= Quality[S] WHERE Submission(S)\nQuality[S] <= Score[S] WHERE Submission(S)",
    )
    .unwrap_err();
    assert!(err.to_string().contains("recursive"));

    // Unsafe variable.
    let err = CarlEngine::new(
        reldb::Instance::review_example(),
        "Score[S] <= Prestige[A] WHERE Submission(S)",
    )
    .unwrap_err();
    assert!(err.to_string().to_lowercase().contains("where"));

    // Malformed query text at answer time.
    let engine = CarlEngine::new(
        reldb::Instance::review_example(),
        "Score[S] <= Prestige[A] WHERE Author(A, S)",
    )
    .expect("valid model");
    assert!(engine.answer_str("Score[S] <= ").is_err());
    assert!(engine.answer_str("Score[S] <= Prestige[A]").is_err()); // missing `?`
}
