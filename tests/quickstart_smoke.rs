//! Workspace smoke test: the `examples/quickstart.rs` path end to end on the
//! paper's Figure-2 instance. If this test passes, the whole parse → ground
//! → unify → adjust → embed pipeline is wired together and the quickstart
//! example cannot bit-rot silently.

use carl::{CarlEngine, GroundedAttr};
use reldb::Instance;

/// The rules of Example 3.4, exactly as the quickstart example declares them
/// (including comments, which the parser must skip).
const RULES: &str = r#"
    # Example 3.4: the relational causal model of REVIEWDATA.
    Prestige[A]  <= Qualification[A]              WHERE Person(A)
    Quality[S]   <= Qualification[A], Prestige[A] WHERE Author(A, S)
    Score[S]     <= Prestige[A]                   WHERE Author(A, S)
    Score[S]     <= Quality[S]                    WHERE Submission(S)
    # Aggregate rule (12): an author's average submission score.
    AVG_Score[A] <= Score[S]                      WHERE Author(A, S)
"#;

#[test]
fn quickstart_pipeline_runs_end_to_end() {
    // Figure 2: Bob, Carlos and Eva with their three submissions.
    let engine = CarlEngine::new(Instance::review_example(), RULES)
        .expect("the quickstart model binds to the review schema");

    // The grounded graph of Figures 4/5 exists and Score[s1] has parents
    // (Example 3.6 derives its grounded rule).
    let grounded = engine.ground_model().expect("the model grounds");
    assert!(grounded.graph.node_count() > 0);
    assert!(grounded.graph.edge_count() > 0);
    for attr in ["Qualification", "Prestige", "Quality", "Score", "AVG_Score"] {
        assert!(
            !grounded.graph.nodes_of_attr(attr).is_empty(),
            "attribute {attr} has no groundings"
        );
    }
    let score_s1 = grounded
        .graph
        .node_id(&GroundedAttr::single("Score", "s1"))
        .expect("Score[s1] is grounded");
    assert!(
        !grounded.graph.parents_of(score_s1).is_empty(),
        "Score[s1] should have grounded parents"
    );

    // The unit table of Table 1: three author units, each with peers, and a
    // non-empty printable rendering (what the example prints).
    let prepared = engine
        .prepare_str("AVG_Score[A] <= Prestige[A]?")
        .expect("the paper query prepares");
    assert_eq!(prepared.unit_table.len(), 3);
    assert_eq!(prepared.response_attr, "AVG_Score");
    assert_eq!(prepared.treatment_attr, "Prestige");
    assert!(prepared.peers.values().all(|p| !p.is_empty()));
    let rendered = prepared.unit_table.to_string();
    assert!(!rendered.trim().is_empty(), "unit table renders");
}
