//! Property-based tests of the estimation layer's algebraic invariants:
//! Proposition 4.1 (AOE = AIE + ARE) and related monotonicity /
//! boundary properties of the peer-regime machinery.

use carl::query::regime_fraction;
use carl::EmbeddingKind;
use carl_lang::PeerCondition;
use proptest::prelude::*;

proptest! {
    /// The representative fraction of any regime lies in [0, 1] and the
    /// extremes ALL / NONE map to the endpoints for every peer count.
    #[test]
    fn regime_fraction_is_a_probability(kpct in 0.0f64..100.0, k in 0u64..20, count in 0usize..30) {
        for regime in [
            PeerCondition::All,
            PeerCondition::None,
            PeerCondition::MoreThanPercent(kpct),
            PeerCondition::LessThanPercent(kpct),
            PeerCondition::AtLeast(k),
            PeerCondition::AtMost(k),
            PeerCondition::Exactly(k),
        ] {
            let f = regime_fraction(&regime, count);
            prop_assert!((0.0..=1.0).contains(&f), "{regime:?} with {count} peers gave {f}");
        }
        prop_assert_eq!(regime_fraction(&PeerCondition::All, count), 1.0);
        prop_assert_eq!(regime_fraction(&PeerCondition::None, count), 0.0);
    }

    /// MORE THAN k% always encodes at least as many treated peers as
    /// LESS THAN k%, for the same threshold.
    #[test]
    fn more_than_dominates_less_than(kpct in 0.0f64..100.0, count in 1usize..30) {
        let more = regime_fraction(&PeerCondition::MoreThanPercent(kpct), count);
        let less = regime_fraction(&PeerCondition::LessThanPercent(kpct), count);
        prop_assert!(more >= less);
    }

    /// Every embedding has a consistent dimensionality and its
    /// counterfactual for fraction 0 equals the embedding of an all-control
    /// peer vector (so ARE of the NONE regime is identically zero).
    #[test]
    fn counterfactual_none_matches_all_zero_vector(count in 0usize..12) {
        for embedding in [
            EmbeddingKind::Mean,
            EmbeddingKind::Median,
            EmbeddingKind::Moments(3),
            EmbeddingKind::Padding(12),
        ] {
            let zeros = vec![0.0; count];
            prop_assert_eq!(embedding.counterfactual(0.0, count), embedding.embed(&zeros));
            let ones = vec![1.0; count];
            prop_assert_eq!(embedding.counterfactual(1.0, count), embedding.embed(&ones));
            prop_assert_eq!(embedding.embed(&zeros).len(), embedding.dim());
        }
    }

    /// The mean embedding of a 0/1 peer-treatment vector is exactly
    /// (fraction treated, count) — the statistic CaRL conditions on.
    #[test]
    fn mean_embedding_recovers_fraction(bits in proptest::collection::vec(0u8..2, 1..20)) {
        let values: Vec<f64> = bits.iter().map(|&b| f64::from(b)).collect();
        let frac = values.iter().sum::<f64>() / values.len() as f64;
        let embedded = EmbeddingKind::Mean.embed(&values);
        prop_assert!((embedded[0] - frac).abs() < 1e-12);
        prop_assert_eq!(embedded[1], values.len() as f64);
    }
}

/// Proposition 4.1 on a real estimation run: AOE = AIE + ARE exactly, for
/// every peer regime, on a synthetic dataset with interference.
#[test]
fn aoe_decomposes_for_every_regime() {
    use carl::CarlEngine;
    use carl_datagen::{generate_synthetic_review, SyntheticReviewConfig};

    let ds = generate_synthetic_review(&SyntheticReviewConfig::small(77));
    let engine = CarlEngine::new(ds.instance, &ds.rules).expect("model binds");
    for regime in [
        "ALL",
        "NONE",
        "MORE THAN 33%",
        "LESS THAN 50%",
        "AT LEAST 2",
        "AT MOST 1",
        "EXACTLY 1",
    ] {
        let ans = engine
            .answer_str(&format!(
                "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = false \
                 WHEN {regime} PEERS TREATED"
            ))
            .unwrap_or_else(|e| panic!("{regime}: {e}"));
        let p = ans.as_peer_effects().expect("peer query");
        assert!(
            (p.aoe - (p.aie + p.are)).abs() < 1e-9,
            "{regime}: AOE {} != AIE {} + ARE {}",
            p.aoe,
            p.aie,
            p.are
        );
    }
}
