//! Concurrency regression suite for the engine's shared caches.
//!
//! A [`CarlEngine`] clone shares the grounding-result cache and the
//! secondary-index/plan cache with its original through `Arc`s. The
//! contract: any number of cloned engines answering any mix of queries
//! from any number of threads — warm or cold caches, any rayon pool width
//! — produce answers **bit-identical** to a fresh engine answering the
//! same queries sequentially. Thread counts are flipped through
//! [`rayon::set_num_threads`] inside a single test (the flips are global
//! to the process), and restored to the default afterwards.

use carl::{digest_answer, CarlEngine};
use carl_datagen::{generate_synthetic_review, SyntheticReviewConfig};
use std::thread;

fn dataset() -> (CarlEngine, Vec<String>) {
    let config = SyntheticReviewConfig {
        authors: 150,
        institutions: 10,
        papers: 600,
        venues: 8,
        ..SyntheticReviewConfig::small(11)
    };
    let ds = generate_synthetic_review(&config);
    let queries = vec![
        "Score[P] <= Prestige[A]?".to_string(),
        "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = false".to_string(),
        "Score[P] <= Prestige[A]? WHERE SubmittedTo(P, V), DoubleBlind[V] = true".to_string(),
    ];
    let engine = CarlEngine::new(ds.instance, &ds.rules).expect("model binds");
    (engine, queries)
}

/// Sequential cold reference: a fresh engine answers each query once.
fn reference(engine: &CarlEngine, queries: &[String]) -> Vec<String> {
    queries
        .iter()
        .map(|q| digest_answer(&engine.answer_str(q)))
        .collect()
}

#[test]
fn parallel_clones_answer_bit_identically_to_sequential() {
    let (engine, queries) = dataset();
    let expected = reference(&engine, &queries);

    // 8 threads × cloned engines × 2 rounds each (the second round runs
    // against caches the other threads warmed concurrently), in different
    // query orders per thread.
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let clone = engine.clone();
            let queries = queries.clone();
            thread::spawn(move || {
                let mut digests = vec![String::new(); queries.len()];
                for round in 0..2 {
                    for i in 0..queries.len() {
                        let i = (i + t + round) % queries.len();
                        digests[i] = digest_answer(&clone.answer_str(&queries[i]));
                    }
                }
                digests
            })
        })
        .collect();
    for handle in threads {
        let digests = handle.join().expect("query thread must not panic");
        assert_eq!(digests, expected, "clone diverged from sequential answers");
    }
}

#[test]
fn answers_are_bit_identical_across_rayon_pool_widths() {
    let (engine, queries) = dataset();
    let expected = reference(&engine, &queries);
    for threads in [1, 2, 4] {
        rayon::set_num_threads(threads);
        // A fresh engine per width (fresh caches): everything from
        // grounding order to unit-table assembly re-runs under the new
        // pool.
        let cold =
            CarlEngine::with_program(engine.instance().clone(), engine.model().program().clone())
                .expect("program re-binds");
        let got = reference(&cold, &queries);
        rayon::set_num_threads(0);
        assert_eq!(
            got, expected,
            "answers changed under {threads} rayon threads"
        );
    }
}
