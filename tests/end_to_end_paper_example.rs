//! Integration test: the paper's running example (Figure 2, Examples 3.4/3.6,
//! Table 1) flows through every layer of the system.

use carl::{CarlEngine, GroundedAttr};
use reldb::{universal_table, Instance, Value};

const RULES: &str = r#"
    Prestige[A]  <= Qualification[A]              WHERE Person(A)
    Quality[S]   <= Qualification[A], Prestige[A] WHERE Author(A, S)
    Score[S]     <= Prestige[A]                   WHERE Author(A, S)
    Score[S]     <= Quality[S]                    WHERE Submission(S)
    AVG_Score[A] <= Score[S]                      WHERE Author(A, S)
"#;

#[test]
fn grounded_graph_matches_figure_4_and_5() {
    let engine = CarlEngine::new(Instance::review_example(), RULES).expect("model binds");
    let grounded = engine.ground_model().expect("grounding succeeds");
    let g = &grounded.graph;
    assert_eq!(g.nodes_of_attr("Score").len(), 3);
    assert_eq!(g.nodes_of_attr("AVG_Score").len(), 3);
    assert_eq!(g.node_count(), 15);
    assert!(g.is_acyclic());

    // The highlighted path of Figure 5: Prestige[Eva] → Score[s1] → AVG_Score[Bob].
    let eva = g.node_id(&GroundedAttr::single("Prestige", "Eva")).unwrap();
    let bob_avg = g
        .node_id(&GroundedAttr::single("AVG_Score", "Bob"))
        .unwrap();
    assert!(g.has_directed_path(eva, bob_avg));
    // Carlos never co-authored with Bob: no path from his prestige to Bob's average.
    let carlos = g
        .node_id(&GroundedAttr::single("Prestige", "Carlos"))
        .unwrap();
    assert!(!g.has_directed_path(carlos, bob_avg));
}

#[test]
fn unit_table_matches_table_1() {
    let engine = CarlEngine::new(Instance::review_example(), RULES).expect("model binds");
    let prepared = engine
        .prepare_str("AVG_Score[A] <= Prestige[A]?")
        .expect("query prepares");
    let ut = &prepared.unit_table;
    assert_eq!(ut.len(), 3);

    let row = |who: &str| {
        ut.units
            .iter()
            .position(|u| u == &vec![Value::from(who)])
            .unwrap()
    };
    let outcomes = ut.outcomes();
    // Table 1 outcomes: Bob 0.75, Carlos 0.1, Eva ≈ 0.4167.
    assert!((outcomes[row("Bob")] - 0.75).abs() < 1e-9);
    assert!((outcomes[row("Carlos")] - 0.1).abs() < 1e-9);
    assert!((outcomes[row("Eva")] - 0.416_666).abs() < 1e-3);

    // Peer treatment embedding (mean, count): Eva has 2 peers with mean
    // prestige 0.5; Bob 1 peer with mean prestige 1.
    let peer_rows = ut.peer_treatment_rows();
    assert_eq!(peer_rows[row("Eva")], vec![0.5, 2.0]);
    assert_eq!(peer_rows[row("Bob")], vec![1.0, 1.0]);

    // Embedded collaborators' h-index (Table 1 last column): Eva 35, Bob 2.
    let col = ut
        .covariate_cols
        .iter()
        .position(|c| c == "peer_Qualification_mean")
        .expect("peer qualification column");
    let covs = ut.covariate_rows();
    assert!((covs[row("Eva")][col] - 35.0).abs() < 1e-9);
    assert!((covs[row("Bob")][col] - 2.0).abs() < 1e-9);
}

#[test]
fn peers_match_section_4_3() {
    let engine = CarlEngine::new(Instance::review_example(), RULES).expect("model binds");
    let prepared = engine
        .prepare_str("AVG_Score[A] <= Prestige[A]?")
        .expect("query prepares");
    let peers_of = |who: &str| {
        let mut ps: Vec<String> = prepared.peers[&vec![Value::from(who)]]
            .iter()
            .map(|p| p[0].to_string())
            .collect();
        ps.sort();
        ps
    };
    assert_eq!(peers_of("Bob"), vec!["Eva".to_string()]);
    assert_eq!(
        peers_of("Eva"),
        vec!["Bob".to_string(), "Carlos".to_string()]
    );
    assert_eq!(peers_of("Carlos"), vec!["Eva".to_string()]);
}

#[test]
fn universal_table_of_the_example_duplicates_submissions() {
    // The statistical hazard the paper warns about: joining the base tables
    // duplicates each submission once per author.
    let table = universal_table(&Instance::review_example()).expect("join succeeds");
    assert_eq!(table.row_count(), 5); // 5 authorships, not 3 submissions
    assert!(table.has_column("Prestige"));
    assert!(table.has_column("Score"));
    assert!(!table.has_column("Quality")); // unobserved attributes never leak
}

#[test]
fn queries_embedded_in_the_program_are_parsed_and_validated() {
    let source = format!(
        "{RULES}\nAVG_Score[A] <= Prestige[A]?\nScore[S] <= Prestige[A]? WHEN ALL PEERS TREATED\n"
    );
    let engine = CarlEngine::new(Instance::review_example(), &source).expect("model binds");
    assert_eq!(engine.program_queries().len(), 2);
    assert!(engine.program_queries()[1].peers.is_some());
}
