//! Peer-review effects: the paper's REVIEWDATA analysis (Figure 7).
//!
//! Generates a review corpus in which institutional prestige influences
//! review scores only at single-blind venues, then asks CaRL for the ATE in
//! each blinding regime and for the isolated / relational / overall effects
//! at single-blind venues.
//!
//! Run with: `cargo run --release --example peer_review_effects`

use carl::CarlEngine;
use carl_datagen::{generate_reviewdata, ReviewConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ReviewConfig {
        authors: 1_500,
        papers: 900,
        ..ReviewConfig::paper_scale(2024)
    };
    println!(
        "generating REVIEWDATA-like corpus: {} authors, {} submissions, {} conferences",
        config.authors, config.papers, config.conferences
    );
    let ds = generate_reviewdata(&config);
    let engine = CarlEngine::new(ds.instance, &ds.rules)?;

    println!("\n== does author prestige causally affect review scores? ==");
    for (label, blind) in [("single-blind", "false"), ("double-blind", "true")] {
        let answer = engine.answer_str(&format!(
            "Score[S] <= Prestige[A]? WHERE Submitted(S, C), Blind[C] = {blind}"
        ))?;
        let ate = answer.as_ate().expect("ATE query");
        println!(
            "  {label:>12}: correlation {:+.3}, naive difference {:+.3}, ATE {:+.3}  ({} treated / {} control authors)",
            ate.correlation, ate.naive_difference, ate.ate, ate.n_treated, ate.n_control
        );
    }
    println!(
        "  -> correlation is positive in both regimes, but the causal effect survives\n\
         adjustment only at single-blind venues (the paper's Figure 7a finding)."
    );

    println!("\n== isolated vs relational effects at single-blind venues ==");
    let peer = engine.answer_str(
        "Score[S] <= Prestige[A]? WHERE Submitted(S, C), Blind[C] = false WHEN ALL PEERS TREATED",
    )?;
    let peer = peer.as_peer_effects().expect("peer-effects query");
    println!("  isolated effect  (AIE): {:+.3}", peer.aie);
    println!("  relational effect(ARE): {:+.3}", peer.are);
    println!("  overall effect   (AOE): {:+.3}", peer.aoe);
    println!(
        "  units: {} ({} with at least one co-author peer, mean {:.2} peers)",
        peer.n_units, peer.n_units_with_peers, peer.mean_peer_count
    );
    println!(
        "  -> an author's own prestige matters more than their collaborators' prestige\n\
         (AIE > ARE), and AOE = AIE + ARE as required by Proposition 4.1."
    );
    Ok(())
}
