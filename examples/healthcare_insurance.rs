//! Healthcare: the effect of not having insurance on mortality and length
//! of stay (the paper's MIMIC-III queries (34a)/(34b), Table 3).
//!
//! Generates a MIMIC-like critical-care database in which uninsured
//! (self-pay) patients arrive sicker, then contrasts the naive difference of
//! averages with the covariate-adjusted ATE.
//!
//! Run with: `cargo run --release --example healthcare_insurance`

use carl::CarlEngine;
use carl_datagen::{generate_mimic, MimicConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MimicConfig {
        patients: 10_000,
        ..MimicConfig::small(7)
    };
    println!(
        "generating MIMIC-like database with {} ICU patients…",
        config.patients
    );
    let ds = generate_mimic(&config);
    println!(
        "tables: {}   attributes: {}   rows: {}",
        ds.table_count(),
        ds.attribute_count(),
        ds.row_count()
    );
    let engine = CarlEngine::new(ds.instance, &ds.rules)?;

    println!("\n== (34a) Death[P] <= SelfPay[P]? ==");
    let death = engine.answer_str("Death[P] <= SelfPay[P]?")?;
    let death = death.as_ate().expect("ATE query");
    println!(
        "  mortality: self-pay {:.1}% vs insured {:.1}%  -> naive difference {:+.1} pp",
        100.0 * death.treated_mean,
        100.0 * death.control_mean,
        100.0 * death.naive_difference
    );
    println!(
        "  adjusted ATE: {:+.1} pp   (planted direct effect: {:+.1} pp)",
        100.0 * death.ate,
        100.0 * ds.ground_truth.ate_primary.unwrap_or(f64::NAN)
    );
    println!(
        "  -> the gap almost vanishes after adjusting for severity at admission:\n\
         care-givers do not discriminate; self-payers simply arrive sicker."
    );

    println!("\n== (34b) Len[P] <= SelfPay[P]? ==");
    let los = engine.answer_str("Len[P] <= SelfPay[P]?")?;
    let los = los.as_ate().expect("ATE query");
    println!(
        "  length of stay: self-pay {:.0} h vs insured {:.0} h  -> naive difference {:+.0} h",
        los.treated_mean, los.control_mean, los.naive_difference
    );
    println!(
        "  adjusted ATE: {:+.0} h   (planted direct effect: {:+.0} h)",
        los.ate,
        ds.ground_truth.ate_secondary.unwrap_or(f64::NAN)
    );
    println!("  -> the effect is attenuated but does not disappear, matching the paper's Table 3.");
    Ok(())
}
