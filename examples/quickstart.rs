//! Quickstart: the paper's running example end to end.
//!
//! Builds the REVIEWDATA instance of Figure 2, declares the relational
//! causal model of Example 3.4 in CaRL, grounds it into the causal graph of
//! Figure 4/5, and prints the unit table of Table 1.
//!
//! Run with: `cargo run --example quickstart`

use carl::{CarlEngine, GroundedAttr};
use reldb::Instance;

const RULES: &str = r#"
    # Example 3.4: the relational causal model of REVIEWDATA.
    Prestige[A]  <= Qualification[A]              WHERE Person(A)
    Quality[S]   <= Qualification[A], Prestige[A] WHERE Author(A, S)
    Score[S]     <= Prestige[A]                   WHERE Author(A, S)
    Score[S]     <= Quality[S]                    WHERE Submission(S)
    # Aggregate rule (12): an author's average submission score.
    AVG_Score[A] <= Score[S]                      WHERE Author(A, S)
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 2: Bob, Carlos and Eva with their three submissions.
    let instance = Instance::review_example();
    let engine = CarlEngine::new(instance, RULES)?;

    // Ground the model: this is the graph of Figures 4 and 5.
    let grounded = engine.ground_model()?;
    println!(
        "grounded causal graph: {} nodes, {} edges",
        grounded.graph.node_count(),
        grounded.graph.edge_count()
    );
    for attr in ["Qualification", "Prestige", "Quality", "Score", "AVG_Score"] {
        println!(
            "  {:>14}: {} groundings",
            attr,
            grounded.graph.nodes_of_attr(attr).len()
        );
    }

    // The grounded rule for Score["s1"] from Example 3.6.
    let score_s1 = grounded
        .graph
        .node_id(&GroundedAttr::single("Score", "s1"))
        .expect("Score[s1] is grounded");
    let parents: Vec<String> = grounded
        .graph
        .parents_of(score_s1)
        .iter()
        .map(|&p| grounded.graph.node(p).to_string())
        .collect();
    println!("\nScore[\"s1\"] <= {}", parents.join(", "));

    // The unit table of Table 1 for the query AVG_Score[A] <= Prestige[A]?.
    let prepared = engine.prepare_str("AVG_Score[A] <= Prestige[A]?")?;
    println!("\nunit table for `AVG_Score[A] <= Prestige[A]?` (paper Table 1):");
    println!("{}", prepared.unit_table);
    println!(
        "relational peers: {}",
        prepared
            .peers
            .iter()
            .map(|(unit, peers)| format!(
                "{} -> {{{}}}",
                unit[0],
                peers
                    .iter()
                    .map(|p| p[0].to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
            .collect::<Vec<_>>()
            .join("; ")
    );
    println!(
        "\n(three units are far too few to estimate an effect — see the other examples for\n\
         full-scale analyses on generated datasets)"
    );
    Ok(())
}
