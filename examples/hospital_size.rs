//! Hospital size and affordability: the paper's NIS query (35), Table 3.
//!
//! Generates an NIS-like inpatient sample in which sicker patients go to
//! large hospitals, asks whether admission to a large hospital causes higher
//! bills, and also runs the flat universal-table baseline for contrast.
//!
//! Run with: `cargo run --release --example hospital_size`

use carl::baseline::{universal_ate, UniversalBaseline};
use carl::{CarlEngine, EstimatorKind};
use carl_datagen::{generate_nis, NisConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = NisConfig {
        admissions: 20_000,
        ..NisConfig::small(11)
    };
    println!(
        "generating NIS-like sample: {} admissions across {} hospitals…",
        config.admissions, config.hospitals
    );
    let ds = generate_nis(&config);
    let engine = CarlEngine::new(ds.instance.clone(), &ds.rules)?;

    println!("\n== (35) Bill[P] <= Admitted_To_Large[P]? ==");
    let ans = engine.answer_str("Bill[P] <= Admitted_To_Large[P]?")?;
    let ate = ans.as_ate().expect("ATE query");
    println!(
        "  above-median bills: large hospitals {:.0}%, small hospitals {:.0}%  -> naive difference {:+.0} pp",
        100.0 * ate.treated_mean,
        100.0 * ate.control_mean,
        100.0 * ate.naive_difference
    );
    println!(
        "  adjusted ATE: {:+.1} pp   (planted direct effect: {:+.0} pp)",
        100.0 * ate.ate,
        100.0 * ds.ground_truth.ate_primary.unwrap_or(f64::NAN)
    );
    println!(
        "  -> the sign reverses once the case-mix (severity, surgery) is adjusted for:\n\
         all else equal, large hospitals are *more* affordable (economies of scale)."
    );

    println!("\n== the same question asked naively on the universal table ==");
    let baseline = UniversalBaseline {
        treatment: "Admitted_To_Large".into(),
        outcome: "Bill".into(),
        covariates: None,
        estimator: EstimatorKind::Naive,
    };
    let flat = universal_ate(&ds.instance, &baseline)?;
    println!(
        "  universal-table rows: {}   naive difference: {:+.0} pp",
        flat.n_units,
        100.0 * flat.naive_difference
    );
    println!("  -> without the relational causal model, the analyst concludes the opposite.");
    Ok(())
}
